#include "core/ensemble.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>

#include "util/thread_pool.h"

namespace cold {

namespace {

ConfidenceInterval ci_of(const std::vector<double>& xs, double level) {
  return bootstrap_mean_ci(xs, level);
}

/// Ensemble runs are embarrassingly parallel: run i depends only on seed
/// base_seed + i. When the run-level fan-out is active, the inner GA is
/// forced sequential (one core per run already saturates the pool). The
/// inner runs never see the caller's observer — per-run event streams
/// would interleave nondeterministically across worker threads — but they
/// do keep the stop condition, which is thread-safe and makes long inner
/// GAs stop at generation boundaries. Per-run results are bit-identical
/// for any thread count. Returns the worker count and, when an adjusted
/// config is needed, the synthesizer the workers must share.
std::size_t plan_runs(const Synthesizer& synth, std::size_t count,
                      std::optional<Synthesizer>& inner,
                      const Synthesizer*& runner) {
  runner = &synth;
  const std::size_t threads =
      std::min(synth.config().parallel.resolved_threads(),
               std::max<std::size_t>(count, 1));
  if (threads > 1 || synth.config().observer != nullptr) {
    SynthesisConfig cfg = synth.config();
    if (threads > 1) cfg.ga.parallel.num_threads = 1;
    cfg.observer = nullptr;
    inner.emplace(std::move(cfg));
    runner = &*inner;
  }
  return threads;
}

}  // namespace

EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed, double ci_level) {
  EnsembleResult result;
  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  const std::size_t threads = plan_runs(synth, count, inner, runner);
  ThreadPool pool(threads);

  RunObserver* observer = synth.config().observer;
  StopCondition* stop = synth.config().stop;
  const auto started = std::chrono::steady_clock::now();
  if (stop != nullptr) stop->arm();
  if (observer != nullptr) {
    observer->on_run_start({base_seed, synth.config().context.num_pops});
  }

  result.runs.resize(count);
  std::vector<TopologyMetrics> metrics(count);
  std::vector<std::uint64_t> run_wall(count, 0);
  std::size_t completed = 0;
  {
    // Phase counters sum over the per-run results. Safe: the timer samples
    // at construction (runs untouched) and destruction (after the last
    // join); slots beyond `completed` are default-constructed zeros.
    const auto eval_count = [&result] {
      std::size_t n = 0;
      for (const SynthesisResult& r : result.runs) n += r.ga.evaluations;
      return n;
    };
    const auto engine_count = [&result] {
      EngineCounters c;
      for (const SynthesisResult& r : result.runs) {
        c.cache_hits += r.cache.hits;
        c.cache_misses += r.cache.misses;
        c.cache_inserts += r.cache.inserts;
        c.cache_evictions += r.cache.evictions;
        c.dedup_skipped += r.ga.dedup_skipped;
        c.dsssp_hits += r.delta.hits;
        c.dsssp_fallbacks += r.delta.fallbacks;
        c.vertices_resettled += r.delta.vertices_resettled;
      }
      return c;
    };
    PhaseTimer phase(observer, Phase::kEnsemble, eval_count, engine_count);
    // Dispatch in waves of one index per worker so the stop condition gets
    // a run-granular checkpoint; inside a wave each run also honors the
    // condition at its own generation boundaries.
    while (completed < count) {
      if (stop != nullptr && stop->should_stop()) {
        result.stopped_early = true;
        result.stop_reason = stop->reason();
        break;
      }
      const std::size_t wave_end = std::min(count, completed + threads);
      pool.parallel_for(completed, wave_end, [&](std::size_t i, std::size_t) {
        const auto run_started = std::chrono::steady_clock::now();
        result.runs[i] = runner->synthesize(base_seed + i);
        metrics[i] = compute_metrics(result.runs[i].network.topology);
        run_wall[i] = elapsed_ns(run_started);
      });
      completed = wave_end;
    }
  }
  result.runs.resize(completed);
  metrics.resize(completed);

  // Telemetry and aggregation happen after the join, in seed order:
  // everything below is independent of the thread count.
  if (observer != nullptr) {
    for (std::size_t i = 0; i < completed; ++i) {
      observer->on_ensemble_run_done(
          {i, base_seed + i, result.runs[i].ga.best_cost, run_wall[i]});
    }
  }

  std::vector<double> deg, diam, clus, cv, hubs, assort;
  for (const TopologyMetrics& m : metrics) {
    deg.push_back(m.avg_degree);
    diam.push_back(static_cast<double>(m.diameter));
    clus.push_back(m.global_clustering);
    cv.push_back(m.degree_cv);
    hubs.push_back(static_cast<double>(m.hubs));
    assort.push_back(m.assortativity);
  }
  result.stats.avg_degree = ci_of(deg, ci_level);
  result.stats.diameter = ci_of(diam, ci_level);
  result.stats.clustering = ci_of(clus, ci_level);
  result.stats.degree_cv = ci_of(cv, ci_level);
  result.stats.hubs = ci_of(hubs, ci_level);
  result.stats.assortativity = ci_of(assort, ci_level);

  // Distinctness check (paper criterion 1): smallest pairwise edit distance
  // plus a whole-network comparison (topology, locations, traffic).
  std::size_t min_diff = std::numeric_limits<std::size_t>::max();
  result.all_distinct = true;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    for (std::size_t j = i + 1; j < result.runs.size(); ++j) {
      const Network& a = result.runs[i].network;
      const Network& b = result.runs[j].network;
      const std::size_t diff =
          Topology::edge_difference(a.topology, b.topology);
      min_diff = std::min(min_diff, diff);
      if (diff == 0 && a.locations == b.locations && a.traffic == b.traffic) {
        result.all_distinct = false;
      }
    }
  }
  result.min_pairwise_edge_difference =
      result.runs.size() < 2 ? 0 : min_diff;

  if (observer != nullptr) {
    RunSummary summary;
    double best = std::numeric_limits<double>::infinity();
    std::size_t evaluations = 0;
    std::size_t dedup_skipped = 0;
    EvalCacheStats cache;
    DeltaStats delta;
    for (const SynthesisResult& r : result.runs) {
      best = std::min(best, r.ga.best_cost);
      evaluations += r.ga.evaluations;
      dedup_skipped += r.ga.dedup_skipped;
      cache += r.cache;
      delta += r.delta;
    }
    summary.best_cost = result.runs.empty() ? 0.0 : best;
    summary.evaluations = evaluations;  // GA evaluations across all runs
    summary.cache_hits = cache.hits;
    summary.cache_misses = cache.misses;
    summary.cache_inserts = cache.inserts;
    summary.cache_evictions = cache.evictions;
    summary.dedup_skipped = dedup_skipped;
    summary.dsssp_hits = delta.hits;
    summary.dsssp_fallbacks = delta.fallbacks;
    summary.vertices_resettled = delta.vertices_resettled;
    summary.wall_ns = elapsed_ns(started);
    summary.stopped_early = result.stopped_early;
    summary.stop_reason = result.stop_reason;
    observer->on_run_end(summary);
  }
  return result;
}

std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed) {
  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  ThreadPool pool(plan_runs(synth, count, inner, runner));

  std::vector<TopologyMetrics> out(count);
  pool.parallel_for(0, count, [&](std::size_t i, std::size_t) {
    // No Network retained — sweeping hundreds of runs would otherwise hold
    // a lot of memory.
    out[i] = compute_metrics(runner->synthesize(base_seed + i).network.topology);
  });
  return out;
}

}  // namespace cold
