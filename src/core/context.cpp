#include "core/context.h"

#include <stdexcept>

#include "geom/distance.h"

namespace cold {

Context generate_context(const ContextConfig& config, Rng& rng) {
  if (config.num_pops < 2) {
    throw std::invalid_argument("generate_context: need at least 2 PoPs");
  }
  static const UniformProcess kDefaultProcess;
  static const ExponentialPopulation kDefaultPopulation(30.0);
  const PointProcess& process =
      config.point_process ? *config.point_process : kDefaultProcess;
  const PopulationModel& populations =
      config.population_model ? *config.population_model : kDefaultPopulation;

  Context ctx;
  ctx.locations = process.sample(config.num_pops, config.region, rng);
  ctx.populations = populations.sample(config.num_pops, rng);
  ctx.traffic = gravity_traffic(ctx.populations, config.gravity);
  ctx.distances = DistanceProvider::from_points(ctx.locations);
  return ctx;
}

Context make_context(std::vector<Point> locations,
                     std::vector<double> populations, Matrix<double> traffic) {
  const std::size_t n = locations.size();
  if (n < 2) throw std::invalid_argument("make_context: need at least 2 PoPs");
  if (populations.size() != n || traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("make_context: shape mismatch");
  }
  Context ctx;
  ctx.locations = std::move(locations);
  ctx.populations = std::move(populations);
  ctx.traffic = CompressedTraffic(traffic);  // ctor validates invariants
  ctx.distances = DistanceProvider::from_points(ctx.locations);
  return ctx;
}

}  // namespace cold
