#include "io/graphml.h"

#include <cctype>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cold {

void write_graphml(std::ostream& os, const Network& net,
                   const std::string& graph_id) {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  os << "  <key id=\"x\" for=\"node\" attr.name=\"x\" attr.type=\"double\"/>\n";
  os << "  <key id=\"y\" for=\"node\" attr.name=\"y\" attr.type=\"double\"/>\n";
  os << "  <key id=\"pop\" for=\"node\" attr.name=\"population\""
        " attr.type=\"double\"/>\n";
  os << "  <key id=\"len\" for=\"edge\" attr.name=\"length\""
        " attr.type=\"double\"/>\n";
  os << "  <key id=\"load\" for=\"edge\" attr.name=\"load\""
        " attr.type=\"double\"/>\n";
  os << "  <key id=\"cap\" for=\"edge\" attr.name=\"capacity\""
        " attr.type=\"double\"/>\n";
  os << "  <graph id=\"" << graph_id << "\" edgedefault=\"undirected\">\n";
  for (NodeId v = 0; v < net.num_pops(); ++v) {
    os << "    <node id=\"n" << v << "\">\n";
    os << "      <data key=\"x\">" << net.locations[v].x << "</data>\n";
    os << "      <data key=\"y\">" << net.locations[v].y << "</data>\n";
    os << "      <data key=\"pop\">" << net.populations[v] << "</data>\n";
    os << "    </node>\n";
  }
  for (std::size_t i = 0; i < net.links.size(); ++i) {
    const Link& l = net.links[i];
    os << "    <edge id=\"e" << i << "\" source=\"n" << l.edge.u
       << "\" target=\"n" << l.edge.v << "\">\n";
    os << "      <data key=\"len\">" << l.length << "</data>\n";
    os << "      <data key=\"load\">" << l.load << "</data>\n";
    os << "      <data key=\"cap\">" << l.capacity << "</data>\n";
    os << "    </edge>\n";
  }
  os << "  </graph>\n</graphml>\n";
}

namespace {

// ---------------------------------------------------------------------------
// Minimal XML pull-parser: just enough for GraphML (tags, attributes, text,
// comments). No namespaces beyond ignoring prefixes, no DTD, no CDATA.
// ---------------------------------------------------------------------------

struct XmlTag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;      // </name>
  bool self_closing = false; // <name ... />
};

class XmlScanner {
 public:
  explicit XmlScanner(std::string text) : text_(std::move(text)) {}

  // Advances to the next tag; returns false at end of input. Text content
  // between tags is accumulated into `last_text`.
  bool next(XmlTag& tag) {
    last_text.clear();
    while (pos_ < text_.size()) {
      const std::size_t lt = text_.find('<', pos_);
      if (lt == std::string::npos) {
        pos_ = text_.size();
        return false;
      }
      last_text.append(text_, pos_, lt - pos_);
      if (text_.compare(lt, 4, "<!--") == 0) {
        const std::size_t end = text_.find("-->", lt);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (text_.compare(lt, 2, "<?") == 0) {
        const std::size_t end = text_.find("?>", lt);
        if (end == std::string::npos) fail("unterminated declaration");
        pos_ = end + 2;
        continue;
      }
      const std::size_t gt = text_.find('>', lt);
      if (gt == std::string::npos) fail("unterminated tag");
      parse_tag(text_.substr(lt + 1, gt - lt - 1), tag);
      pos_ = gt + 1;
      return true;
    }
    return false;
  }

  std::string last_text;

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("GraphML parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void parse_tag(std::string body, XmlTag& tag) {
    tag.attrs.clear();
    tag.closing = false;
    tag.self_closing = false;
    if (!body.empty() && body.front() == '/') {
      tag.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      tag.self_closing = true;
      body.pop_back();
    }
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    };
    skip_ws();
    const std::size_t name_start = i;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    tag.name = body.substr(name_start, i - name_start);
    // Strip any namespace prefix.
    const std::size_t colon = tag.name.find(':');
    if (colon != std::string::npos) tag.name = tag.name.substr(colon + 1);
    if (tag.name.empty()) fail("empty tag name");
    // Attributes: name="value".
    while (true) {
      skip_ws();
      if (i >= body.size()) break;
      const std::size_t eq = body.find('=', i);
      if (eq == std::string::npos) fail("attribute without value");
      std::string key = body.substr(i, eq - i);
      while (!key.empty() && std::isspace(static_cast<unsigned char>(key.back()))) {
        key.pop_back();
      }
      i = eq + 1;
      skip_ws();
      if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
        fail("unquoted attribute value");
      }
      const char quote = body[i++];
      const std::size_t end = body.find(quote, i);
      if (end == std::string::npos) fail("unterminated attribute value");
      tag.attrs[key] = body.substr(i, end - i);
      i = end + 1;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::string xml_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    if (s.compare(i, 4, "&lt;") == 0) { out += '<'; i += 3; }
    else if (s.compare(i, 4, "&gt;") == 0) { out += '>'; i += 3; }
    else if (s.compare(i, 5, "&amp;") == 0) { out += '&'; i += 4; }
    else if (s.compare(i, 6, "&quot;") == 0) { out += '"'; i += 5; }
    else if (s.compare(i, 6, "&apos;") == 0) { out += '\''; i += 5; }
    else out += s[i];
  }
  return out;
}

}  // namespace

GraphMlData graphml_from_string(const std::string& text) {
  XmlScanner scanner(text);
  XmlTag tag;

  // key id -> canonical attribute name ("x", "y", "population").
  std::map<std::string, std::string> key_names;
  auto canonical = [](std::string name) {
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name == "longitude") return std::string("x");
    if (name == "latitude") return std::string("y");
    return name;
  };

  struct RawNode {
    std::string id;
    double x = 0, y = 0;
    double population = 1.0;
    bool located = false;
  };
  std::vector<RawNode> nodes;
  std::map<std::string, std::size_t> node_index;
  std::vector<std::pair<std::string, std::string>> edges;
  bool saw_graphml = false, saw_graph = false;

  // Parse state: inside which element, and which data key.
  enum class Ctx { kNone, kNode, kEdge };
  Ctx ctx = Ctx::kNone;
  std::string data_key;
  bool in_data = false;

  while (scanner.next(tag)) {
    if (in_data && tag.name == "data" && tag.closing) {
      // Attach the accumulated text to the current node.
      if (ctx == Ctx::kNode && !nodes.empty()) {
        const std::string name =
            key_names.count(data_key) ? key_names[data_key] : canonical(data_key);
        const std::string value = xml_unescape(scanner.last_text);
        try {
          if (name == "x") { nodes.back().x = std::stod(value); nodes.back().located = true; }
          else if (name == "y") { nodes.back().y = std::stod(value); nodes.back().located = true; }
          else if (name == "population" || name == "pop") {
            nodes.back().population = std::stod(value);
          }
        } catch (const std::exception&) {
          // Non-numeric attribute (e.g. a label): ignore.
        }
      }
      in_data = false;
      continue;
    }
    if (tag.closing) {
      if (tag.name == "node" || tag.name == "edge") ctx = Ctx::kNone;
      continue;
    }
    if (tag.name == "graphml") saw_graphml = true;
    else if (tag.name == "graph") saw_graph = true;
    else if (tag.name == "key") {
      const auto id = tag.attrs.find("id");
      const auto name = tag.attrs.find("attr.name");
      if (id != tag.attrs.end() && name != tag.attrs.end()) {
        key_names[id->second] = canonical(name->second);
      }
    } else if (tag.name == "node") {
      const auto id = tag.attrs.find("id");
      if (id == tag.attrs.end()) throw std::runtime_error("GraphML: node without id");
      if (node_index.count(id->second)) {
        throw std::runtime_error("GraphML: duplicate node id " + id->second);
      }
      node_index[id->second] = nodes.size();
      nodes.push_back(RawNode{id->second, 0, 0, 1.0, false});
      ctx = tag.self_closing ? Ctx::kNone : Ctx::kNode;
    } else if (tag.name == "edge") {
      const auto s = tag.attrs.find("source");
      const auto t = tag.attrs.find("target");
      if (s == tag.attrs.end() || t == tag.attrs.end()) {
        throw std::runtime_error("GraphML: edge without endpoints");
      }
      edges.emplace_back(s->second, t->second);
      ctx = tag.self_closing ? Ctx::kNone : Ctx::kEdge;
    } else if (tag.name == "data" && !tag.self_closing) {
      const auto key = tag.attrs.find("key");
      data_key = key == tag.attrs.end() ? "" : key->second;
      in_data = true;
    }
  }
  if (!saw_graphml || !saw_graph) {
    throw std::runtime_error("GraphML: missing <graphml>/<graph> structure");
  }

  GraphMlData out;
  out.topology = Topology(nodes.size());
  out.locations.reserve(nodes.size());
  out.populations.reserve(nodes.size());
  for (const RawNode& node : nodes) {
    out.locations.push_back(Point{node.x, node.y});
    out.populations.push_back(node.population > 0 ? node.population : 1.0);
    out.has_locations = out.has_locations || node.located;
  }
  for (const auto& [s, t] : edges) {
    const auto si = node_index.find(s);
    const auto ti = node_index.find(t);
    if (si == node_index.end() || ti == node_index.end()) {
      throw std::runtime_error("GraphML: edge endpoint not declared");
    }
    if (si->second == ti->second) continue;  // drop self-loops
    out.topology.add_edge(si->second, ti->second);
  }
  return out;
}

GraphMlData read_graphml(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return graphml_from_string(buffer.str());
}

}  // namespace cold
