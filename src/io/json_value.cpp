#include "io/json_value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cold {

const JsonObject& JsonValue::object() const {
  if (!is_object()) throw std::runtime_error("JSON: expected object");
  return std::get<JsonObject>(v);
}

const JsonArray& JsonValue::array() const {
  if (!is_array()) throw std::runtime_error("JSON: expected array");
  return std::get<JsonArray>(v);
}

double JsonValue::number() const {
  if (!is_number()) throw std::runtime_error("JSON: expected number");
  return std::get<double>(v);
}

bool JsonValue::boolean() const {
  if (!is_bool()) throw std::runtime_error("JSON: expected bool");
  return std::get<bool>(v);
}

const std::string& JsonValue::str() const {
  if (!is_string()) throw std::runtime_error("JSON: expected string");
  return std::get<std::string>(v);
}

const JsonValue& JsonValue::field(const std::string& key) const {
  const auto& obj = object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("JSON: missing field '" + key + "'");
  }
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && object().count(key) > 0;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // ASCII-only decode (our schemas emit no non-ASCII).
            const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double x) {
  if (!std::isfinite(x)) throw std::invalid_argument("JSON: non-finite number");
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << x;
  os << tmp.str();
}

void indent_to(std::ostream& os, int levels) {
  for (int i = 0; i < levels; ++i) os << "  ";
}

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

void write_json(std::ostream& os, const JsonValue& value, int indent) {
  if (value.is_null()) {
    os << "null";
  } else if (value.is_bool()) {
    os << (value.boolean() ? "true" : "false");
  } else if (value.is_number()) {
    write_number(os, value.number());
  } else if (value.is_string()) {
    write_string(os, value.str());
  } else if (value.is_array()) {
    const JsonArray& arr = value.array();
    if (arr.empty()) {
      os << "[]";
      return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      indent_to(os, indent + 1);
      write_json(os, arr[i], indent + 1);
      os << (i + 1 < arr.size() ? ",\n" : "\n");
    }
    indent_to(os, indent);
    os << "]";
  } else {
    const JsonObject& obj = value.object();
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os << "{\n";
    std::size_t i = 0;
    for (const auto& [key, val] : obj) {
      indent_to(os, indent + 1);
      write_string(os, key);
      os << ": ";
      write_json(os, val, indent + 1);
      os << (++i < obj.size() ? ",\n" : "\n");
    }
    indent_to(os, indent);
    os << "}";
  }
}

std::string json_to_string(const JsonValue& value) {
  std::ostringstream os;
  write_json(os, value);
  os << "\n";
  return os.str();
}

}  // namespace cold
