#include "io/json.h"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/json_value.h"

namespace cold {

namespace {

void write_number(std::ostream& os, double x) {
  if (!std::isfinite(x)) throw std::invalid_argument("JSON: non-finite number");
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << x;
  os << tmp.str();
}

}  // namespace

void write_network_json(std::ostream& os, const Network& net) {
  const std::size_t n = net.num_pops();
  os << "{\n  \"num_pops\": " << n << ",\n";
  os << "  \"overprovision\": ";
  write_number(os, net.overprovision);
  os << ",\n  \"pops\": [\n";
  for (std::size_t v = 0; v < n; ++v) {
    os << "    {\"id\": " << v << ", \"x\": ";
    write_number(os, net.locations[v].x);
    os << ", \"y\": ";
    write_number(os, net.locations[v].y);
    os << ", \"population\": ";
    write_number(os, net.populations[v]);
    os << "}" << (v + 1 < n ? "," : "") << "\n";
  }
  os << "  ],\n  \"links\": [\n";
  for (std::size_t i = 0; i < net.links.size(); ++i) {
    const Link& l = net.links[i];
    os << "    {\"u\": " << l.edge.u << ", \"v\": " << l.edge.v
       << ", \"length\": ";
    write_number(os, l.length);
    os << ", \"load\": ";
    write_number(os, l.load);
    os << ", \"capacity\": ";
    write_number(os, l.capacity);
    os << "}" << (i + 1 < net.links.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"traffic\": [\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << "    [";
    for (std::size_t j = 0; j < n; ++j) {
      if (j) os << ", ";
      write_number(os, net.traffic(i, j));
    }
    os << "]" << (i + 1 < n ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string network_to_json(const Network& net) {
  std::ostringstream os;
  write_network_json(os, net);
  return os.str();
}

Network network_from_json(const std::string& json) {
  const JsonValue doc = parse_json(json);
  const auto n = static_cast<std::size_t>(doc.field("num_pops").number());
  const double overprovision = doc.field("overprovision").number();

  std::vector<Point> locations(n);
  std::vector<double> populations(n);
  for (const JsonValue& pop : doc.field("pops").array()) {
    const auto id = static_cast<std::size_t>(pop.field("id").number());
    if (id >= n) throw std::runtime_error("JSON: pop id out of range");
    locations[id] = Point{pop.field("x").number(), pop.field("y").number()};
    populations[id] = pop.field("population").number();
  }

  Topology g(n);
  for (const JsonValue& link : doc.field("links").array()) {
    g.add_edge(static_cast<NodeId>(link.field("u").number()),
               static_cast<NodeId>(link.field("v").number()));
  }

  Matrix<double> traffic = Matrix<double>::square(n, 0.0);
  const JsonArray& rows = doc.field("traffic").array();
  if (rows.size() != n) throw std::runtime_error("JSON: traffic row count");
  for (std::size_t i = 0; i < n; ++i) {
    const JsonArray& row = rows[i].array();
    if (row.size() != n) throw std::runtime_error("JSON: traffic col count");
    for (std::size_t j = 0; j < n; ++j) traffic(i, j) = row[j].number();
  }

  // Routing, loads and capacities are derived state: rebuild them.
  return build_network(g, locations, populations, traffic, overprovision);
}

Network read_network_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return network_from_json(buffer.str());
}

}  // namespace cold
