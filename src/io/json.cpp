#include "io/json.h"

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <variant>
#include <vector>

namespace cold {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser. Only the subset this
// schema needs (objects, arrays, numbers, strings, bools) — but the parser
// accepts any standard JSON so schema evolution stays painless.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }

  const JsonObject& object() const {
    if (!is_object()) throw std::runtime_error("JSON: expected object");
    return std::get<JsonObject>(v);
  }
  const JsonArray& array() const {
    if (!is_array()) throw std::runtime_error("JSON: expected array");
    return std::get<JsonArray>(v);
  }
  double number() const {
    if (!std::holds_alternative<double>(v)) {
      throw std::runtime_error("JSON: expected number");
    }
    return std::get<double>(v);
  }
  const JsonValue& field(const std::string& key) const {
    const auto& obj = object();
    const auto it = obj.find(key);
    if (it == obj.end()) {
      throw std::runtime_error("JSON: missing field '" + key + "'");
    }
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // ASCII-only decode (schema emits no non-ASCII).
            const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

void write_number(std::ostream& os, double x) {
  if (!std::isfinite(x)) throw std::invalid_argument("JSON: non-finite number");
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << x;
  os << tmp.str();
}

}  // namespace

void write_network_json(std::ostream& os, const Network& net) {
  const std::size_t n = net.num_pops();
  os << "{\n  \"num_pops\": " << n << ",\n";
  os << "  \"overprovision\": ";
  write_number(os, net.overprovision);
  os << ",\n  \"pops\": [\n";
  for (std::size_t v = 0; v < n; ++v) {
    os << "    {\"id\": " << v << ", \"x\": ";
    write_number(os, net.locations[v].x);
    os << ", \"y\": ";
    write_number(os, net.locations[v].y);
    os << ", \"population\": ";
    write_number(os, net.populations[v]);
    os << "}" << (v + 1 < n ? "," : "") << "\n";
  }
  os << "  ],\n  \"links\": [\n";
  for (std::size_t i = 0; i < net.links.size(); ++i) {
    const Link& l = net.links[i];
    os << "    {\"u\": " << l.edge.u << ", \"v\": " << l.edge.v
       << ", \"length\": ";
    write_number(os, l.length);
    os << ", \"load\": ";
    write_number(os, l.load);
    os << ", \"capacity\": ";
    write_number(os, l.capacity);
    os << "}" << (i + 1 < net.links.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"traffic\": [\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << "    [";
    for (std::size_t j = 0; j < n; ++j) {
      if (j) os << ", ";
      write_number(os, net.traffic(i, j));
    }
    os << "]" << (i + 1 < n ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string network_to_json(const Network& net) {
  std::ostringstream os;
  write_network_json(os, net);
  return os.str();
}

Network network_from_json(const std::string& json) {
  const JsonValue doc = Parser(json).parse();
  const auto n = static_cast<std::size_t>(doc.field("num_pops").number());
  const double overprovision = doc.field("overprovision").number();

  std::vector<Point> locations(n);
  std::vector<double> populations(n);
  for (const JsonValue& pop : doc.field("pops").array()) {
    const auto id = static_cast<std::size_t>(pop.field("id").number());
    if (id >= n) throw std::runtime_error("JSON: pop id out of range");
    locations[id] = Point{pop.field("x").number(), pop.field("y").number()};
    populations[id] = pop.field("population").number();
  }

  Topology g(n);
  for (const JsonValue& link : doc.field("links").array()) {
    g.add_edge(static_cast<NodeId>(link.field("u").number()),
               static_cast<NodeId>(link.field("v").number()));
  }

  Matrix<double> traffic = Matrix<double>::square(n, 0.0);
  const JsonArray& rows = doc.field("traffic").array();
  if (rows.size() != n) throw std::runtime_error("JSON: traffic row count");
  for (std::size_t i = 0; i < n; ++i) {
    const JsonArray& row = rows[i].array();
    if (row.size() != n) throw std::runtime_error("JSON: traffic col count");
    for (std::size_t j = 0; j < n; ++j) traffic(i, j) = row[j].number();
  }

  // Routing, loads and capacities are derived state: rebuild them.
  return build_network(g, locations, populations, traffic, overprovision);
}

Network read_network_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return network_from_json(buffer.str());
}

}  // namespace cold
