#include "io/dot.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cold {

void write_dot(std::ostream& os, const Topology& g, const DotOptions& options) {
  os << "graph " << options.graph_name << " {\n";
  os << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
}

void write_dot(std::ostream& os, const Network& net, const DotOptions& options) {
  os << "graph " << options.graph_name << " {\n";
  os << "  node [shape=circle];\n";
  for (NodeId v = 0; v < net.num_pops(); ++v) {
    os << "  n" << v << " [label=\"PoP" << v << "\"";
    if (options.include_positions) {
      os << ", pos=\"" << net.locations[v].x * options.position_scale << ","
         << net.locations[v].y * options.position_scale << "!\"";
    }
    const bool is_core = net.topology.degree(v) > 1;
    os << ", style=filled, fillcolor=\""
       << (is_core ? "lightblue" : "lightgrey") << "\"";
    os << "];\n";
  }
  for (const Link& l : net.links) {
    os << "  n" << l.edge.u << " -- n" << l.edge.v;
    if (options.include_capacities) {
      os << " [label=\"cap=" << l.capacity << "\\nlen=" << l.length << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

void write_dot_file(const std::string& path, const Network& net,
                    const DotOptions& options) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_dot_file: cannot open " + path);
  write_dot(file, net, options);
  if (!file) throw std::runtime_error("write_dot_file: write failed: " + path);
}

}  // namespace cold
