// GraphML export — the interchange format used by most topology tooling
// (including the Internet Topology Zoo the paper tunes against).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.h"
#include "net/network.h"

namespace cold {

/// Writes the network as GraphML with x/y/population node attributes and
/// length/load/capacity edge attributes.
void write_graphml(std::ostream& os, const Network& net,
                   const std::string& graph_id = "cold");

/// A topology plus whatever node attributes the file carried. Suitable for
/// feeding real-world maps (e.g. Internet Topology Zoo GraphML) into the
/// metrics and ABC-estimation pipelines.
struct GraphMlData {
  Topology topology;
  std::vector<Point> locations;      ///< x/y (or Longitude/Latitude), else 0
  std::vector<double> populations;   ///< population attr, else 1.0
  bool has_locations = false;
};

/// Parses a GraphML document (the subset produced by write_graphml plus the
/// Topology Zoo conventions: node/edge elements, double/float/string data
/// keys, attr.name aliases x|Longitude and y|Latitude). Node ids may be
/// arbitrary strings; they are densely renumbered in document order.
/// Throws std::runtime_error on malformed XML or missing structure.
GraphMlData read_graphml(std::istream& is);
GraphMlData graphml_from_string(const std::string& text);

}  // namespace cold
