// Plain-text edge-list + coordinates format, for feeding external (e.g.
// measured) topologies into the metrics and ABC-estimation pipelines.
//
// Format (comments start with '#'):
//   node <id> <x> <y> [population]
//   edge <u> <v>
// Node ids must be dense 0..n-1; every edge endpoint must be declared.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.h"
#include "graph/topology.h"

namespace cold {

struct EdgeListData {
  Topology topology;
  std::vector<Point> locations;
  std::vector<double> populations;
};

/// Parses the edge-list format; throws std::runtime_error with a line number
/// on malformed input.
EdgeListData read_edge_list(std::istream& is);
EdgeListData edge_list_from_string(const std::string& text);

/// Writes the same format.
void write_edge_list(std::ostream& os, const EdgeListData& data);

}  // namespace cold
