#include "io/edgelist.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cold {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("edge list, line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

EdgeListData read_edge_list(std::istream& is) {
  struct RawNode {
    std::size_t id;
    Point where;
    double population;
  };
  std::vector<RawNode> nodes;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "node") {
      RawNode node{0, {}, 1.0};
      if (!(ls >> node.id >> node.where.x >> node.where.y)) {
        fail(line_no, "expected: node <id> <x> <y> [population]");
      }
      ls >> node.population;  // optional; default stays 1.0
      if (node.population <= 0) fail(line_no, "population must be > 0");
      nodes.push_back(node);
    } else if (kind == "edge") {
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v)) fail(line_no, "expected: edge <u> <v>");
      if (u == v) fail(line_no, "self-loop");
      edges.emplace_back(u, v);
    } else {
      fail(line_no, "unknown record '" + kind + "'");
    }
  }

  const std::size_t n = nodes.size();
  EdgeListData data;
  data.topology = Topology(n);
  data.locations.assign(n, Point{});
  data.populations.assign(n, 0.0);
  std::vector<bool> seen(n, false);
  for (const auto& node : nodes) {
    if (node.id >= n) {
      throw std::runtime_error("edge list: node ids must be dense 0..n-1");
    }
    if (seen[node.id]) {
      throw std::runtime_error("edge list: duplicate node id " +
                               std::to_string(node.id));
    }
    seen[node.id] = true;
    data.locations[node.id] = node.where;
    data.populations[node.id] = node.population;
  }
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::runtime_error("edge list: edge endpoint not declared");
    }
    data.topology.add_edge(u, v);
  }
  return data;
}

EdgeListData edge_list_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

void write_edge_list(std::ostream& os, const EdgeListData& data) {
  for (NodeId v = 0; v < data.topology.num_nodes(); ++v) {
    os << "node " << v << ' ' << data.locations[v].x << ' '
       << data.locations[v].y << ' ' << data.populations[v] << '\n';
  }
  for (const Edge& e : data.topology.edges()) {
    os << "edge " << e.u << ' ' << e.v << '\n';
  }
}

}  // namespace cold
