// Graphviz DOT export for quick visual inspection of synthesized networks.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/topology.h"
#include "net/network.h"

namespace cold {

struct DotOptions {
  std::string graph_name = "cold";
  bool include_positions = true;   ///< emit pos="x,y!" for neato layouts
  bool include_capacities = true;  ///< emit capacity/length labels
  double position_scale = 10.0;    ///< unit-square coords -> inches
};

/// Writes a bare topology (no attributes beyond structure).
void write_dot(std::ostream& os, const Topology& g,
               const DotOptions& options = {});

/// Writes a full network with coordinates, link lengths and capacities.
void write_dot(std::ostream& os, const Network& net,
               const DotOptions& options = {});

/// Convenience: write to a file path; throws std::runtime_error on failure.
void write_dot_file(const std::string& path, const Network& net,
                    const DotOptions& options = {});

}  // namespace cold
