// Generic JSON document model, parser and writer.
//
// Extracted from the network serializer so every subsystem that needs
// structured, machine-readable artifacts (network files, telemetry run
// reports, CLI `--format json` output) shares one JSON implementation.
// Only the subset the schemas need (objects, arrays, numbers, strings,
// bools, null) is modeled, but the parser accepts any standard JSON so
// schema evolution stays painless.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace cold {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted, so serialization is canonical: two
/// logically equal documents print byte-identically.
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  JsonValue() = default;
  JsonValue(std::nullptr_t) : v(nullptr) {}
  JsonValue(bool b) : v(b) {}
  JsonValue(double d) : v(d) {}
  JsonValue(int i) : v(static_cast<double>(i)) {}
  JsonValue(std::size_t u) : v(static_cast<double>(u)) {}
  JsonValue(const char* s) : v(std::string(s)) {}
  JsonValue(std::string s) : v(std::move(s)) {}
  JsonValue(JsonArray a) : v(std::move(a)) {}
  JsonValue(JsonObject o) : v(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  const JsonObject& object() const;
  const JsonArray& array() const;
  double number() const;
  bool boolean() const;
  const std::string& str() const;

  /// Required object field; throws std::runtime_error when missing.
  const JsonValue& field(const std::string& key) const;

  /// True iff this is an object containing `key`.
  bool has(const std::string& key) const;
};

/// Parses a complete JSON document. Throws std::runtime_error with a
/// position-annotated message on malformed input.
JsonValue parse_json(const std::string& text);

/// Writes `value` with 2-space indentation per nesting level, starting at
/// `indent` levels. Numbers print with 17 significant digits (round-trip
/// exact for doubles); non-finite numbers throw std::invalid_argument.
void write_json(std::ostream& os, const JsonValue& value, int indent = 0);

std::string json_to_string(const JsonValue& value);

}  // namespace cold
