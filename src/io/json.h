// JSON serialization of synthesized networks.
//
// The schema captures everything a simulator downstream needs: PoP
// coordinates and populations, links with length/load/capacity, the traffic
// matrix, and the overprovisioning factor. Round-trips: read(write(net))
// reproduces the network (routing is recomputed on load — it is derived
// state).
#pragma once

#include <iosfwd>
#include <string>

#include "net/network.h"

namespace cold {

/// Writes a network as a single JSON object.
void write_network_json(std::ostream& os, const Network& net);

/// Serializes to a string.
std::string network_to_json(const Network& net);

/// Parses a network from JSON produced by write_network_json. Throws
/// std::runtime_error with a position-annotated message on malformed input,
/// and std::invalid_argument when the document is valid JSON but violates
/// network invariants (via build_network's checks).
Network read_network_json(std::istream& is);
Network network_from_json(const std::string& json);

}  // namespace cold
