// Gravity-model traffic matrices (paper §3.1, refs [18-22]).
//
// Demand between PoPs i and j is proportional to the product of their
// populations: T(i,j) = scale * p_i * p_j for i != j, T(i,i) = 0. This is
// the maximum-entropy traffic model given per-PoP totals, and the paper's
// (sole) traffic model; randomness enters through the populations.
#pragma once

#include <vector>

#include "util/matrix.h"

namespace cold {

/// Traffic demand matrix. Symmetric, zero diagonal, non-negative.
using TrafficMatrix = Matrix<double>;

struct GravityOptions {
  /// Overall scaling applied to every entry. With populations of mean m and
  /// scale s, the expected total offered load is ~ s * m^2 * n * (n-1).
  double scale = 1.0;
  /// If > 0, rescale the whole matrix so its total (sum over ordered pairs)
  /// equals this value; overrides `scale`.
  double normalize_total = 0.0;
};

/// Builds the gravity matrix from per-PoP populations (all must be > 0).
TrafficMatrix gravity_matrix(const std::vector<double>& populations,
                             const GravityOptions& options = {});

/// Sum over all ordered pairs (total offered traffic).
double total_traffic(const TrafficMatrix& tm);

/// Per-PoP total traffic (row sums); proportional to population under the
/// gravity model.
std::vector<double> traffic_per_pop(const TrafficMatrix& tm);

/// Validates gravity-matrix invariants (symmetry, zero diagonal,
/// non-negativity); throws std::invalid_argument on violation. Used by
/// consumers that accept externally supplied matrices.
void validate_traffic_matrix(const TrafficMatrix& tm);

}  // namespace cold
