// Gravity-model traffic matrices (paper §3.1, refs [18-22]).
//
// Demand between PoPs i and j is proportional to the product of their
// populations: T(i,j) = scale * p_i * p_j for i != j, T(i,i) = 0. This is
// the maximum-entropy traffic model given per-PoP totals, and the paper's
// (sole) traffic model; randomness enters through the populations.
//
// Two representations:
//   - TrafficMatrix: the historical dense n^2 Matrix<double> (kept for I/O,
//     tests and user-supplied matrices).
//   - CompressedTraffic: CSR over the nonzero demands with per-row prefix
//     totals — the evaluation engine's native form. Exact by construction:
//     compressing a dense matrix stores its nonzero entries bit-for-bit,
//     lookups return 0.0 for absent pairs, and per-row totals skip only
//     exact zeros (adding +0.0 into a non-negative accumulator cannot
//     change its bits), so every consumer gets byte-identical results from
//     either form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/matrix.h"

namespace cold {

/// Traffic demand matrix. Symmetric, zero diagonal, non-negative.
using TrafficMatrix = Matrix<double>;

struct GravityOptions {
  /// Overall scaling applied to every entry. With populations of mean m and
  /// scale s, the expected total offered load is ~ s * m^2 * n * (n-1).
  double scale = 1.0;
  /// If > 0, rescale the whole matrix so its total (sum over ordered pairs)
  /// equals this value; overrides `scale`.
  double normalize_total = 0.0;
  /// If > 0, keep only each PoP's K largest demands (deterministic
  /// tie-break: smallest peer index), symmetrized by union with the
  /// transpose and renormalized so the total offered load matches the
  /// exact model. Opt-in approximation for large-n runs (--traffic-topk);
  /// 0 keeps the exact matrix.
  std::size_t topk = 0;
};

/// Compressed row storage of a traffic matrix: per-row sorted column/value
/// spans over the nonzero demands, per-row totals, and the grand total.
/// A value type over an immutable shared core — Context, Network and every
/// Evaluator clone alias one CSR with no per-copy n^2 (or n*nnz) state.
/// Columns are 32-bit (n < 2^32), which at n = 10000 keeps the exact
/// gravity CSR at 12 bytes per demand instead of a 800 MiB dense matrix
/// per holder.
class CompressedTraffic {
 public:
  CompressedTraffic() = default;

  /// Compresses a dense matrix (implicit, for legacy call sites).
  /// Validates gravity invariants (square, symmetric, zero diagonal,
  /// finite non-negative entries) and stores the nonzero entries verbatim.
  CompressedTraffic(const TrafficMatrix& dense);  // NOLINT(runtime/explicit)

  /// One row's nonzero demands: parallel column/value arrays, columns
  /// strictly ascending.
  struct RowSpan {
    const std::uint32_t* col = nullptr;
    const double* val = nullptr;
    std::size_t len = 0;
  };

  /// Demand from i to j; 0.0 when the pair carries none (binary search).
  double operator()(std::size_t i, std::size_t j) const {
    if (data_ == nullptr) return 0.0;
    const Data& d = *data_;
    const std::size_t lo = d.off[i];
    const std::size_t hi = d.off[i + 1];
    const std::uint32_t target = static_cast<std::uint32_t>(j);
    std::size_t a = lo;
    std::size_t b = hi;
    while (a < b) {
      const std::size_t mid = a + (b - a) / 2;
      if (d.col[mid] < target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return (a < hi && d.col[a] == target) ? d.val[a] : 0.0;
  }

  RowSpan row_span(std::size_t i) const {
    if (data_ == nullptr) return RowSpan{};
    const Data& d = *data_;
    return RowSpan{d.col.data() + d.off[i], d.val.data() + d.off[i],
                   d.off[i + 1] - d.off[i]};
  }

  std::size_t rows() const { return data_ != nullptr ? data_->n : 0; }
  std::size_t cols() const { return rows(); }
  bool empty() const { return rows() == 0; }

  /// Stored (nonzero) demand count over ordered pairs.
  std::size_t nnz() const { return data_ != nullptr ? data_->val.size() : 0; }

  /// Per-row demand total (prefix-summed at build, column-ascending order —
  /// bit-identical to a dense row sum by exact-zero skipping).
  double row_total(std::size_t i) const { return data_->row_total[i]; }

  /// Total offered load over ordered pairs.
  double total() const { return data_ != nullptr ? data_->total : 0.0; }

  /// The top-K truncation this matrix was built with; 0 means exact.
  std::size_t topk() const { return data_ != nullptr ? data_->topk : 0; }

  /// Fraction of the exact gravity total retained by the top-K truncation
  /// before renormalization; 1.0 for exact matrices. Reported per run so
  /// --traffic-topk users can see how much demand mass the sparsification
  /// actually kept.
  double kept_mass() const { return data_ != nullptr ? data_->kept_mass : 1.0; }

  /// Content equality (shared-core fast path first).
  friend bool operator==(const CompressedTraffic& a,
                         const CompressedTraffic& b);

  /// True iff both alias the same immutable core (how clones share the
  /// context without a deep copy). Exposed for tests.
  bool shares_core_with(const CompressedTraffic& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

 private:
  struct Data {
    std::size_t n = 0;
    std::size_t topk = 0;
    double total = 0.0;
    double kept_mass = 1.0;  ///< kept_total / exact_total under top-K
    std::vector<std::size_t> off;       ///< n + 1 row offsets
    std::vector<std::uint32_t> col;     ///< ascending within each row
    std::vector<double> val;
    std::vector<double> row_total;
  };

  std::shared_ptr<const Data> data_;

  friend CompressedTraffic gravity_traffic(
      const std::vector<double>& populations, const GravityOptions& options);
};

/// Builds the gravity matrix from per-PoP populations (all must be > 0).
TrafficMatrix gravity_matrix(const std::vector<double>& populations,
                             const GravityOptions& options = {});

/// Builds the gravity demands directly in compressed form — no dense n^2
/// intermediate. With options.topk == 0 the result is entrywise
/// bit-identical to CompressedTraffic(gravity_matrix(populations, options)).
CompressedTraffic gravity_traffic(const std::vector<double>& populations,
                                  const GravityOptions& options = {});

/// Sum over all ordered pairs (total offered traffic).
double total_traffic(const TrafficMatrix& tm);
double total_traffic(const CompressedTraffic& tm);

/// Per-PoP total traffic (row sums); proportional to population under the
/// gravity model.
std::vector<double> traffic_per_pop(const TrafficMatrix& tm);
std::vector<double> traffic_per_pop(const CompressedTraffic& tm);

/// Validates gravity-matrix invariants (symmetry, zero diagonal,
/// non-negativity); throws std::invalid_argument on violation. Used by
/// consumers that accept externally supplied matrices.
void validate_traffic_matrix(const TrafficMatrix& tm);
void validate_traffic_matrix(const CompressedTraffic& tm);

}  // namespace cold
