// Iterative proportional fitting (IPF) for traffic matrices.
//
// The gravity model is the maximum-entropy prior for a traffic matrix
// (paper §3.1, refs [20, 22]); when per-PoP totals are *known* (e.g. from
// interface counters), the maximum-entropy matrix consistent with them is
// obtained by IPF-scaling a seed matrix to the target marginals. This lets
// users synthesize networks against measured per-PoP volumes instead of
// random populations.
#pragma once

#include <vector>

#include "util/matrix.h"

namespace cold {

struct IpfOptions {
  std::size_t max_iterations = 5000;
  double tolerance = 1e-9;  ///< max relative marginal error at convergence
};

struct IpfResult {
  Matrix<double> matrix;
  std::size_t iterations = 0;
  double max_error = 0.0;  ///< final max relative marginal error
  bool converged = false;
};

/// Scales `seed` (non-negative, zero diagonal) so its row sums match
/// `row_targets` and column sums match `col_targets`. Target vectors must
/// be positive and their sums equal (within tolerance). Throws
/// std::invalid_argument on inconsistent input. The classic RAS algorithm;
/// symmetry of the seed plus equal row/col targets yields a symmetric
/// result.
IpfResult ipf_fit(const Matrix<double>& seed,
                  const std::vector<double>& row_targets,
                  const std::vector<double>& col_targets,
                  const IpfOptions& options = {});

/// Convenience for the symmetric traffic-matrix case: gravity seed from the
/// targets themselves, fitted so every PoP's total traffic equals its
/// target.
IpfResult ipf_traffic_matrix(const std::vector<double>& per_pop_totals,
                             const IpfOptions& options = {});

}  // namespace cold
