#include "traffic/ipf.h"

#include <cmath>
#include <stdexcept>

namespace cold {

IpfResult ipf_fit(const Matrix<double>& seed,
                  const std::vector<double>& row_targets,
                  const std::vector<double>& col_targets,
                  const IpfOptions& options) {
  const std::size_t n = seed.rows();
  if (seed.cols() != n || row_targets.size() != n || col_targets.size() != n) {
    throw std::invalid_argument("ipf_fit: shape mismatch");
  }
  double row_total = 0.0, col_total = 0.0;
  for (double t : row_targets) {
    if (!(t > 0)) throw std::invalid_argument("ipf_fit: targets must be > 0");
    row_total += t;
  }
  for (double t : col_targets) {
    if (!(t > 0)) throw std::invalid_argument("ipf_fit: targets must be > 0");
    col_total += t;
  }
  if (std::abs(row_total - col_total) > 1e-6 * row_total) {
    throw std::invalid_argument("ipf_fit: row/col target totals differ");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (seed(i, i) != 0.0) {
      throw std::invalid_argument("ipf_fit: seed diagonal must be zero");
    }
    // Each row needs at least one positive off-diagonal entry to be
    // scalable to a positive target.
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (seed(i, j) < 0) {
        throw std::invalid_argument("ipf_fit: seed must be non-negative");
      }
      row_sum += seed(i, j);
    }
    if (row_sum <= 0) {
      throw std::invalid_argument("ipf_fit: seed has an all-zero row");
    }
  }

  IpfResult result;
  result.matrix = seed;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // Row scaling.
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) sum += result.matrix(i, j);
      const double f = row_targets[i] / sum;
      for (std::size_t j = 0; j < n; ++j) result.matrix(i, j) *= f;
    }
    // Column scaling.
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += result.matrix(i, j);
      const double f = col_targets[j] / sum;
      for (std::size_t i = 0; i < n; ++i) result.matrix(i, j) *= f;
    }
    // Convergence: max relative marginal error.
    result.max_error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double row_sum = 0.0, col_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row_sum += result.matrix(i, j);
        col_sum += result.matrix(j, i);
      }
      result.max_error = std::max(
          result.max_error, std::abs(row_sum - row_targets[i]) / row_targets[i]);
      result.max_error = std::max(
          result.max_error, std::abs(col_sum - col_targets[i]) / col_targets[i]);
    }
    if (result.max_error <= options.tolerance) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  return result;
}

IpfResult ipf_traffic_matrix(const std::vector<double>& per_pop_totals,
                             const IpfOptions& options) {
  const std::size_t n = per_pop_totals.size();
  if (n < 2) throw std::invalid_argument("ipf_traffic_matrix: need n >= 2");
  // Gravity seed from the targets themselves (max-entropy prior).
  Matrix<double> seed = Matrix<double>::square(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(per_pop_totals[i] > 0)) {
      throw std::invalid_argument("ipf_traffic_matrix: totals must be > 0");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) seed(i, j) = per_pop_totals[i] * per_pop_totals[j];
    }
  }
  IpfResult result = ipf_fit(seed, per_pop_totals, per_pop_totals, options);
  // Equal row/col targets with a symmetric seed have a symmetric solution;
  // the finite iteration stops a hair off it, so symmetrize explicitly
  // (averaging preserves both marginals because they coincide).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (result.matrix(i, j) + result.matrix(j, i));
      result.matrix(i, j) = avg;
      result.matrix(j, i) = avg;
    }
  }
  return result;
}

}  // namespace cold
