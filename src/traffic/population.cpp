#include "traffic/population.h"

#include <stdexcept>

namespace cold {

ExponentialPopulation::ExponentialPopulation(double mean) : mean_(mean) {
  if (mean <= 0) {
    throw std::invalid_argument("ExponentialPopulation: mean must be > 0");
  }
}

std::vector<double> ExponentialPopulation::sample(std::size_t n,
                                                  Rng& rng) const {
  std::vector<double> pops;
  pops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(mean_));
  return pops;
}

ParetoPopulation::ParetoPopulation(double alpha, double mean)
    : alpha_(alpha), mean_(mean) {
  if (alpha <= 1.0) {
    throw std::invalid_argument("ParetoPopulation: alpha must be > 1");
  }
  if (mean <= 0) {
    throw std::invalid_argument("ParetoPopulation: mean must be > 0");
  }
}

std::vector<double> ParetoPopulation::sample(std::size_t n, Rng& rng) const {
  std::vector<double> pops;
  pops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pops.push_back(rng.pareto_with_mean(alpha_, mean_));
  }
  return pops;
}

UniformPopulation::UniformPopulation(double value) : value_(value) {
  if (value <= 0) {
    throw std::invalid_argument("UniformPopulation: value must be > 0");
  }
}

std::vector<double> UniformPopulation::sample(std::size_t n, Rng&) const {
  return std::vector<double>(n, value_);
}

}  // namespace cold
