#include "traffic/gravity.h"

#include <cmath>
#include <stdexcept>

namespace cold {

TrafficMatrix gravity_matrix(const std::vector<double>& populations,
                             const GravityOptions& options) {
  const std::size_t n = populations.size();
  for (double p : populations) {
    if (!(p > 0.0)) {
      throw std::invalid_argument("gravity_matrix: populations must be > 0");
    }
  }
  TrafficMatrix tm = TrafficMatrix::square(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double t = options.scale * populations[i] * populations[j];
      tm(i, j) = t;
      tm(j, i) = t;
      total += 2.0 * t;
    }
  }
  if (options.normalize_total > 0.0 && total > 0.0) {
    const double f = options.normalize_total / total;
    for (double& x : tm.data()) x *= f;
  }
  return tm;
}

double total_traffic(const TrafficMatrix& tm) {
  double total = 0.0;
  for (double x : tm.data()) total += x;
  return total;
}

std::vector<double> traffic_per_pop(const TrafficMatrix& tm) {
  std::vector<double> row_sums(tm.rows(), 0.0);
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    for (std::size_t j = 0; j < tm.cols(); ++j) row_sums[i] += tm(i, j);
  }
  return row_sums;
}

void validate_traffic_matrix(const TrafficMatrix& tm) {
  if (tm.rows() != tm.cols()) {
    throw std::invalid_argument("traffic matrix must be square");
  }
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    if (tm(i, i) != 0.0) {
      throw std::invalid_argument("traffic matrix must have zero diagonal");
    }
    for (std::size_t j = 0; j < tm.cols(); ++j) {
      if (!(tm(i, j) >= 0.0) || !std::isfinite(tm(i, j))) {
        throw std::invalid_argument("traffic matrix entries must be finite, >= 0");
      }
      if (tm(i, j) != tm(j, i)) {
        throw std::invalid_argument("traffic matrix must be symmetric");
      }
    }
  }
}

}  // namespace cold
