#include "traffic/gravity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cold {

namespace {

void check_populations(const std::vector<double>& populations) {
  for (double p : populations) {
    if (!(p > 0.0)) {
      throw std::invalid_argument("gravity_matrix: populations must be > 0");
    }
  }
}

void check_column_width(std::size_t n) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "CompressedTraffic: node count exceeds 32-bit column storage");
  }
}

}  // namespace

TrafficMatrix gravity_matrix(const std::vector<double>& populations,
                             const GravityOptions& options) {
  const std::size_t n = populations.size();
  check_populations(populations);
  TrafficMatrix tm = TrafficMatrix::square(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double t = options.scale * populations[i] * populations[j];
      tm(i, j) = t;
      tm(j, i) = t;
      total += 2.0 * t;
    }
  }
  if (options.normalize_total > 0.0 && total > 0.0) {
    const double f = options.normalize_total / total;
    for (double& x : tm.data()) x *= f;
  }
  return tm;
}

CompressedTraffic::CompressedTraffic(const TrafficMatrix& dense) {
  validate_traffic_matrix(dense);
  const std::size_t n = dense.rows();
  check_column_width(n);
  auto d = std::make_shared<Data>();
  d->n = n;
  d->off.resize(n + 1, 0);
  d->row_total.resize(n, 0.0);
  // Two passes: count, then fill (keeps col/val exactly sized — the CSR is
  // long-lived and shared, so no capacity slack).
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense(i, j) != 0.0) ++nnz;
    }
  }
  d->col.reserve(nnz);
  d->val.reserve(nnz);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double t = dense(i, j);
      if (t == 0.0) continue;  // exact-zero skip: bit-neutral in every sum
      d->col.push_back(static_cast<std::uint32_t>(j));
      d->val.push_back(t);
      row_sum += t;
      total += t;
    }
    d->off[i + 1] = d->col.size();
    d->row_total[i] = row_sum;
  }
  d->total = total;
  data_ = std::move(d);
}

bool operator==(const CompressedTraffic& a, const CompressedTraffic& b) {
  if (a.data_ == b.data_) return true;
  if (a.data_ == nullptr || b.data_ == nullptr) return false;
  const CompressedTraffic::Data& x = *a.data_;
  const CompressedTraffic::Data& y = *b.data_;
  return x.n == y.n && x.off == y.off && x.col == y.col && x.val == y.val;
}

CompressedTraffic gravity_traffic(const std::vector<double>& populations,
                                  const GravityOptions& options) {
  const std::size_t n = populations.size();
  check_populations(populations);
  check_column_width(n);
  // Evaluate in canonical (min, max) order: the dense builder computes
  // each demand once for i < j and mirrors it, and (s*a)*b vs (s*b)*a can
  // differ in the last ulp.
  const auto demand = [&](std::size_t i, std::size_t j) {
    const std::size_t a = i < j ? i : j;
    const std::size_t b = i < j ? j : i;
    return options.scale * populations[a] * populations[b];
  };
  // Exact total, accumulated in gravity_matrix's order so the
  // normalize_total factor is the bit-identical double.
  double exact_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      exact_total += 2.0 * demand(i, j);
    }
  }
  double norm = 1.0;
  bool normalize = false;
  if (options.normalize_total > 0.0 && exact_total > 0.0) {
    norm = options.normalize_total / exact_total;
    normalize = true;
  }

  auto d = std::make_shared<CompressedTraffic::Data>();
  d->n = n;
  d->topk = (options.topk > 0 && options.topk < (n > 0 ? n - 1 : 0))
                ? options.topk
                : 0;
  d->off.resize(n + 1, 0);
  d->row_total.resize(n, 0.0);

  // Which peers each row keeps: everyone (exact), or the union of the
  // row's own top-K picks with the transpose's (keeps the matrix
  // symmetric, so routing still sees demand in both directions).
  std::vector<std::vector<std::uint32_t>> kept;
  double kept_scale = 1.0;
  if (d->topk != 0) {
    const std::size_t k = d->topk;
    kept.resize(n);
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) order.push_back(static_cast<std::uint32_t>(j));
      }
      // Top K by demand, deterministic tie-break: smallest peer index.
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](std::uint32_t a, std::uint32_t b) {
                          const double da = demand(i, a);
                          const double db = demand(i, b);
                          if (da != db) return da > db;
                          return a < b;
                        });
      order.resize(k);
      std::sort(order.begin(), order.end());
      kept[i].insert(kept[i].end(), order.begin(), order.end());
    }
    // Union with the transpose: if i keeps j, j must also carry (j, i).
    std::vector<std::vector<std::uint32_t>> incoming(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t j : kept[i]) {
        incoming[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
    double kept_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t>& row = kept[i];
      row.insert(row.end(), incoming[i].begin(), incoming[i].end());
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      for (std::uint32_t j : row) kept_total += demand(i, j);
    }
    // Renormalize so the truncated matrix offers the exact model's total.
    if (kept_total > 0.0) kept_scale = exact_total / kept_total;
    if (exact_total > 0.0) d->kept_mass = kept_total / exact_total;
  }

  std::size_t nnz = 0;
  if (d->topk == 0) {
    nnz = n > 0 ? n * (n - 1) : 0;
  } else {
    for (const auto& row : kept) nnz += row.size();
  }
  d->col.reserve(nnz);
  d->val.reserve(nnz);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    const auto push = [&](std::uint32_t j) {
      double t = demand(i, j);
      if (d->topk != 0) t *= kept_scale;
      if (normalize) t *= norm;
      if (t == 0.0) return;
      d->col.push_back(j);
      d->val.push_back(t);
      row_sum += t;
      total += t;
    };
    if (d->topk == 0) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) push(static_cast<std::uint32_t>(j));
      }
    } else {
      for (std::uint32_t j : kept[i]) push(j);
    }
    d->off[i + 1] = d->col.size();
    d->row_total[i] = row_sum;
  }
  d->total = total;
  CompressedTraffic out;
  out.data_ = std::move(d);
  return out;
}

double total_traffic(const TrafficMatrix& tm) {
  double total = 0.0;
  for (double x : tm.data()) total += x;
  return total;
}

double total_traffic(const CompressedTraffic& tm) { return tm.total(); }

std::vector<double> traffic_per_pop(const TrafficMatrix& tm) {
  std::vector<double> row_sums(tm.rows(), 0.0);
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    for (std::size_t j = 0; j < tm.cols(); ++j) row_sums[i] += tm(i, j);
  }
  return row_sums;
}

std::vector<double> traffic_per_pop(const CompressedTraffic& tm) {
  std::vector<double> row_sums(tm.rows(), 0.0);
  for (std::size_t i = 0; i < tm.rows(); ++i) row_sums[i] = tm.row_total(i);
  return row_sums;
}

void validate_traffic_matrix(const TrafficMatrix& tm) {
  if (tm.rows() != tm.cols()) {
    throw std::invalid_argument("traffic matrix must be square");
  }
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    if (tm(i, i) != 0.0) {
      throw std::invalid_argument("traffic matrix must have zero diagonal");
    }
    for (std::size_t j = 0; j < tm.cols(); ++j) {
      if (!(tm(i, j) >= 0.0) || !std::isfinite(tm(i, j))) {
        throw std::invalid_argument("traffic matrix entries must be finite, >= 0");
      }
      if (tm(i, j) != tm(j, i)) {
        throw std::invalid_argument("traffic matrix must be symmetric");
      }
    }
  }
}

void validate_traffic_matrix(const CompressedTraffic& tm) {
  // The CSR builders validate on construction; re-check the invariants over
  // the stored nonzeros (symmetry via transpose lookup, O(nnz log n)).
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    const CompressedTraffic::RowSpan row = tm.row_span(i);
    for (std::size_t k = 0; k < row.len; ++k) {
      const std::size_t j = row.col[k];
      if (j == i) {
        throw std::invalid_argument("traffic matrix must have zero diagonal");
      }
      const double t = row.val[k];
      if (!(t >= 0.0) || !std::isfinite(t)) {
        throw std::invalid_argument("traffic matrix entries must be finite, >= 0");
      }
      if (t != tm(j, i)) {
        throw std::invalid_argument("traffic matrix must be symmetric");
      }
    }
  }
}

}  // namespace cold
