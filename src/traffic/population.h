// PoP population models (paper §3.1).
//
// The gravity traffic matrix is driven by a random "population" per PoP.
// The paper's default is i.i.d. exponential with mean 30; it also trials
// Pareto with shape 10/9 and 1.5 (same mean) to probe heavy-tail effects
// (§7). All three are provided, plus a deterministic model for tests.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.h"

namespace cold {

/// Interface for per-PoP population generation.
class PopulationModel {
 public:
  virtual ~PopulationModel() = default;
  /// Returns n strictly positive populations.
  virtual std::vector<double> sample(std::size_t n, Rng& rng) const = 0;
  /// Mean of the distribution (for normalization and reporting).
  virtual double mean() const = 0;
};

/// I.i.d. exponential populations — the paper's default (mean 30).
class ExponentialPopulation final : public PopulationModel {
 public:
  explicit ExponentialPopulation(double mean = 30.0);
  std::vector<double> sample(std::size_t n, Rng& rng) const override;
  double mean() const override { return mean_; }

 private:
  double mean_;
};

/// I.i.d. Pareto populations with the given shape (> 1) and mean.
/// Shapes 10/9 (~infinite-variance regime) and 1.5 match the paper's trials.
class ParetoPopulation final : public PopulationModel {
 public:
  ParetoPopulation(double alpha, double mean = 30.0);
  std::vector<double> sample(std::size_t n, Rng& rng) const override;
  double mean() const override { return mean_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double mean_;
};

/// Every PoP has the same population — handy for tests and for isolating
/// geometric effects in ablations.
class UniformPopulation final : public PopulationModel {
 public:
  explicit UniformPopulation(double value = 30.0);
  std::vector<double> sample(std::size_t n, Rng& rng) const override;
  double mean() const override { return value_; }

 private:
  double value_;
};

}  // namespace cold
