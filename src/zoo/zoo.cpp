#include "zoo/zoo.h"

#include <stdexcept>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace cold {

Topology zoo_star(std::size_t n) {
  if (n < 3) throw std::invalid_argument("zoo_star: n >= 3");
  return Topology::star(n, 0);
}

Topology zoo_double_star(std::size_t n) {
  if (n < 4) throw std::invalid_argument("zoo_double_star: n >= 4");
  Topology g(n);
  g.add_edge(0, 1);  // the two hubs
  for (NodeId v = 2; v < n; ++v) g.add_edge(v % 2, v);
  return g;
}

Topology zoo_multi_hub(std::size_t n, std::size_t hubs) {
  if (hubs < 2 || hubs >= n) {
    throw std::invalid_argument("zoo_multi_hub: need 2 <= hubs < n");
  }
  Topology g(n);
  for (NodeId h = 0; h < hubs; ++h) {
    g.add_edge(h, (h + 1) % hubs);  // hub ring
  }
  for (NodeId v = hubs; v < n; ++v) g.add_edge(v % hubs, v);
  return g;
}

Topology zoo_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("zoo_ring: n >= 3");
  Topology g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Topology zoo_ring_with_chords(std::size_t n, std::size_t chords) {
  Topology g = zoo_ring(n);
  // Deterministic long chords: v <-> v + n/2 (mod n), staggered.
  std::size_t added = 0;
  for (NodeId v = 0; added < chords && v < n; v += 2) {
    const NodeId u = (v + n / 2) % n;
    if (u != v && g.add_edge(v, u)) ++added;
  }
  return g;
}

Topology zoo_balanced_tree(std::size_t n, std::size_t arity) {
  if (n < 2 || arity < 1) {
    throw std::invalid_argument("zoo_balanced_tree: bad parameters");
  }
  Topology g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / arity, v);
  return g;
}

Topology zoo_partial_mesh(std::size_t n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("zoo_partial_mesh: p outside [0,1]");
  }
  Rng rng(seed, 0x200);
  Topology g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  // Keep the archetype connected: chain up any leftover components.
  const auto labels = connected_components(g);
  for (NodeId v = 1; v < n; ++v) {
    if (labels[v] != labels[0]) g.add_edge(v - 1, v);
  }
  return g;
}

Topology zoo_ladder(std::size_t n) {
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("zoo_ladder: n must be even, >= 4");
  }
  const std::size_t half = n / 2;
  Topology g(n);
  for (NodeId v = 0; v + 1 < half; ++v) {
    g.add_edge(v, v + 1);                 // top rail
    g.add_edge(half + v, half + v + 1);   // bottom rail
  }
  for (NodeId v = 0; v < half; ++v) g.add_edge(v, half + v);  // rungs
  return g;
}

Topology zoo_dumbbell(std::size_t side) {
  if (side < 3) throw std::invalid_argument("zoo_dumbbell: side >= 3");
  const std::size_t n = 2 * side;
  Topology g(n);
  for (NodeId i = 0; i < side; ++i) {
    for (NodeId j = i + 1; j < side; ++j) {
      g.add_edge(i, j);
      g.add_edge(side + i, side + j);
    }
  }
  g.add_edge(side - 1, side);  // the bridge
  return g;
}

Topology zoo_grid(std::size_t rows, std::size_t cols) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("zoo_grid: need rows, cols >= 2");
  }
  Topology g(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      const NodeId v = r * cols + c;
      if (c + 1 < cols) g.add_edge(v, v + 1);
      if (r + 1 < rows) g.add_edge(v, v + cols);
    }
  }
  return g;
}

std::vector<ZooEntry> synthetic_zoo() {
  // Composition is calibrated to the distributional facts the paper quotes
  // from [16]: ~15-20% of networks with CVND > 1 (tail near 2), ~90% of
  // clustering coefficients below 0.25 with the exceptions being very small
  // networks.
  std::vector<ZooEntry> zoo;
  auto add = [&](std::string name, Topology t) {
    zoo.push_back(ZooEntry{std::move(name), std::move(t)});
  };
  // Hub-and-spoke family (the high-CVND tail the paper's Fig 8a shows).
  for (std::size_t n : {8, 12, 16, 20}) {
    add("star-" + std::to_string(n), zoo_star(n));
  }
  add("double-star-18", zoo_double_star(18));
  add("double-star-30", zoo_double_star(30));
  add("multi-hub-3-of-15", zoo_multi_hub(15, 3));
  add("multi-hub-4-of-24", zoo_multi_hub(24, 4));
  add("multi-hub-5-of-40", zoo_multi_hub(40, 5));
  // Trees.
  add("tree-binary-15", zoo_balanced_tree(15, 2));
  add("tree-binary-31", zoo_balanced_tree(31, 2));
  add("tree-binary-47", zoo_balanced_tree(47, 2));
  add("tree-ternary-22", zoo_balanced_tree(22, 3));
  add("tree-quad-21", zoo_balanced_tree(21, 4));
  add("path-12", zoo_balanced_tree(12, 1));
  // Rings and chorded rings (regional/backbone archetypes).
  for (std::size_t n : {6, 10, 14, 20, 28, 34}) {
    add("ring-" + std::to_string(n), zoo_ring(n));
  }
  add("ring-chords-12-2", zoo_ring_with_chords(12, 2));
  add("ring-chords-20-4", zoo_ring_with_chords(20, 4));
  add("ring-chords-30-6", zoo_ring_with_chords(30, 6));
  // Partial meshes (interconnected cores; p kept moderate so clustering
  // stays in the range [16] reports for mid-size networks).
  add("mesh-8-22", zoo_partial_mesh(8, 0.22, 11));
  add("mesh-12-18", zoo_partial_mesh(12, 0.18, 12));
  add("mesh-16-15", zoo_partial_mesh(16, 0.15, 13));
  add("mesh-24-12", zoo_partial_mesh(24, 0.12, 14));
  add("mesh-36-10", zoo_partial_mesh(36, 0.10, 15));
  // Ladders / dumbbells (long-haul pairs, dual backbones). The dumbbells
  // are the small, highly clustered networks [16] contains.
  add("ladder-12", zoo_ladder(12));
  add("ladder-20", zoo_ladder(20));
  add("ladder-28", zoo_ladder(28));
  add("dumbbell-5", zoo_dumbbell(5));
  add("dumbbell-6", zoo_dumbbell(6));
  // Metro grids.
  add("grid-3x4", zoo_grid(3, 4));
  add("grid-4x5", zoo_grid(4, 5));
  add("grid-5x6", zoo_grid(5, 6));
  // Small complete graphs: the few very small, very clustered networks in
  // [16] whose GCC exceeds 0.25.
  add("clique-5", Topology::complete(5));
  add("clique-6", Topology::complete(6));
  return zoo;
}

}  // namespace cold
