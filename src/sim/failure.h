// Failure-impact simulation over synthesized networks — the consumer-side
// substrate the paper motivates ("test new networking algorithms and
// protocols whose properties and performance often depend on the structure
// of the underlying network", §1).
//
// Given a Network (topology + capacities + traffic + routing), these
// analyses answer the questions a simulation study typically asks:
//   * if link X fails, which demands lose connectivity, how much does their
//     path stretch, and which surviving links overload?
//   * across all single-link (or single-PoP) failures, what are the worst
//     cases?
#pragma once

#include <vector>

#include "net/network.h"

namespace cold {

/// Impact of one failure scenario.
struct FailureImpact {
  bool disconnected = false;       ///< some demand became unroutable
  double traffic_disconnected = 0; ///< demand volume with no surviving path
  double traffic_rerouted = 0;     ///< demand volume moved to longer paths
  double total_traffic = 0;        ///< offered load (ordered pairs)
  double mean_stretch = 1.0;       ///< mean length stretch of rerouted demand
  double worst_stretch = 1.0;      ///< max length stretch over demands
  double max_utilization = 0.0;    ///< max post-failure load / capacity
  std::size_t overloaded_links = 0;///< links with load > capacity after reroute
};

/// Simulates the failure of a single link (must exist in the network).
/// Traffic is rerouted on shortest surviving paths; loads are recomputed and
/// compared against the *original* provisioned capacities.
FailureImpact simulate_link_failure(const Network& net, Edge link);

/// Simulates the simultaneous failure of several links (each must exist in
/// the network; duplicates are rejected — removing an edge twice would
/// silently assess a different scenario). Same accounting as
/// simulate_link_failure; the reference recomputation for the resilience
/// engine's sampled two-link scenarios (cost/resilience.h).
FailureImpact simulate_multi_link_failure(const Network& net,
                                          const std::vector<Edge>& links);

/// Simulates the failure of a whole PoP: all its links are removed and
/// demands sourced/sunk at it are written off (not counted as disconnected);
/// transit through it must reroute.
FailureImpact simulate_pop_failure(const Network& net, NodeId pop);

/// Sweep over every single-link failure. Returns impacts aligned with
/// net.links order.
std::vector<FailureImpact> single_link_failure_sweep(const Network& net);

/// Summary of a sweep: worst-case and averages, for reporting.
struct FailureSweepSummary {
  std::size_t scenarios = 0;
  std::size_t disconnecting = 0;   ///< scenarios that strand traffic
  double mean_rerouted_fraction = 0.0;
  double worst_stretch = 1.0;
  double worst_utilization = 0.0;
};

FailureSweepSummary summarize_sweep(const std::vector<FailureImpact>& sweep);

}  // namespace cold
