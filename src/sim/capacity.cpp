#include "sim/capacity.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cold {

double max_traffic_multiplier(const Network& net) {
  double worst = std::numeric_limits<double>::infinity();
  for (const Link& l : net.links) {
    if (l.load <= 0.0) continue;
    worst = std::min(worst, l.capacity / l.load);
  }
  return worst;
}

std::vector<LinkHeadroom> headroom_ranking(const Network& net) {
  std::vector<LinkHeadroom> out;
  out.reserve(net.links.size());
  for (const Link& l : net.links) {
    LinkHeadroom h;
    h.edge = l.edge;
    h.load = l.load;
    h.capacity = l.capacity;
    h.utilization = l.capacity > 0.0
                        ? l.load / l.capacity
                        : (l.load > 0.0
                               ? std::numeric_limits<double>::infinity()
                               : 0.0);
    out.push_back(h);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LinkHeadroom& a, const LinkHeadroom& b) {
                     return a.utilization > b.utilization;
                   });
  return out;
}

std::vector<double> required_capacities(const Network& net, double multiplier,
                                        double overprovision) {
  if (multiplier < 0.0) {
    throw std::invalid_argument("required_capacities: multiplier must be >= 0");
  }
  if (overprovision < 1.0) {
    throw std::invalid_argument("required_capacities: overprovision >= 1");
  }
  std::vector<double> out;
  out.reserve(net.links.size());
  for (const Link& l : net.links) {
    out.push_back(overprovision * multiplier * l.load);
  }
  return out;
}

}  // namespace cold
