// Capacity planning over synthesized networks: how much traffic growth a
// provisioned network absorbs, and where it runs out.
//
// COLD sizes capacities as overprovision * routed load (paper eq. (1)'s
// factor O). These helpers answer the operator-side questions that factor
// exists for: the maximum uniform demand multiplier the network carries
// without overload, and the per-link headroom ranking that tells a planner
// what to upgrade first.
#pragma once

#include <vector>

#include "net/network.h"

namespace cold {

/// Largest multiplier f such that routing f * traffic keeps every link's
/// load within capacity. With shortest-path routing and uniform scaling,
/// loads scale linearly, so this is exact (no search needed):
/// f = min over links of capacity / load. Returns +infinity if all loads
/// are zero; 0 if some loaded link has zero capacity.
double max_traffic_multiplier(const Network& net);

struct LinkHeadroom {
  Edge edge;
  double load = 0.0;
  double capacity = 0.0;
  double utilization = 0.0;  ///< load / capacity (inf if capacity == 0)
};

/// Per-link utilization, sorted most-constrained first. The first entry is
/// the binding constraint of max_traffic_multiplier().
std::vector<LinkHeadroom> headroom_ranking(const Network& net);

/// Capacity needed on every link to carry `multiplier` x the current
/// traffic with the given overprovisioning; aligned with net.links. Useful
/// for costing an upgrade under the paper's cost model.
std::vector<double> required_capacities(const Network& net, double multiplier,
                                        double overprovision = 1.0);

}  // namespace cold
