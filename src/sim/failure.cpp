#include "sim/failure.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/routing.h"

namespace cold {

namespace {

// Core engine shared by link and PoP failure: compare shortest paths and
// loads on `damaged` against the baseline network. `ignore_endpoint` (if
// < n) removes demands sourced or sunk at that node from consideration.
FailureImpact assess(const Network& net, const Topology& damaged,
                     NodeId ignore_endpoint) {
  const std::size_t n = net.num_pops();
  FailureImpact impact;

  // Baseline and damaged shortest-path lengths.
  ShortestPathTree base_tree, dam_tree;
  // Demand-level accounting.
  double stretch_weight = 0.0, stretch_sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    if (s == ignore_endpoint) continue;
    shortest_path_tree(net.topology, net.lengths, s, base_tree);
    shortest_path_tree(damaged, net.lengths, s, dam_tree);
    // Walk the CSR row (ascending t, zeros absent) — same visit order as
    // the dense scan, which skipped non-positive demands anyway.
    const CompressedTraffic::RowSpan row = net.traffic.row_span(s);
    for (std::size_t k = 0; k < row.len; ++k) {
      const NodeId t = row.col[k];
      if (t == ignore_endpoint) continue;
      const double demand = row.val[k];
      if (demand <= 0.0) continue;
      impact.total_traffic += demand;
      if (dam_tree.hops[t] < 0) {
        impact.disconnected = true;
        impact.traffic_disconnected += demand;
        continue;
      }
      const double before = base_tree.dist[t];
      const double after = dam_tree.dist[t];
      if (after > before + 1e-12) {
        impact.traffic_rerouted += demand;
        const double stretch = before > 0 ? after / before : 1.0;
        stretch_sum += stretch * demand;
        stretch_weight += demand;
        impact.worst_stretch = std::max(impact.worst_stretch, stretch);
      }
    }
  }
  impact.mean_stretch =
      stretch_weight > 0 ? stretch_sum / stretch_weight : 1.0;

  // Post-failure loads vs original capacities.
  EdgeLoads loads;
  RoutingWorkspace ws;
  if (route_loads(damaged, net.lengths, net.traffic, loads, ws)) {
    // Fully routable; compare per-link.
    for (const Link& l : net.links) {
      if (!damaged.has_edge(l.edge.u, l.edge.v)) continue;
      const double load = loads.at(l.edge.u, l.edge.v);
      if (l.capacity > 0) {
        const double util = load / l.capacity;
        impact.max_utilization = std::max(impact.max_utilization, util);
        if (util > 1.0 + 1e-9) ++impact.overloaded_links;
      } else if (load > 0) {
        ++impact.overloaded_links;  // load appeared on an unprovisioned link
        impact.max_utilization = std::numeric_limits<double>::infinity();
      }
    }
  }
  return impact;
}

}  // namespace

FailureImpact simulate_link_failure(const Network& net, Edge link) {
  if (!net.topology.has_edge(link.u, link.v)) {
    throw std::invalid_argument("simulate_link_failure: no such link");
  }
  Topology damaged = net.topology;
  damaged.remove_edge(link.u, link.v);
  return assess(net, damaged, /*ignore_endpoint=*/net.num_pops());
}

FailureImpact simulate_multi_link_failure(const Network& net,
                                          const std::vector<Edge>& links) {
  Topology damaged = net.topology;
  for (const Edge& link : links) {
    // remove_edge returns false for an absent edge, which catches both
    // never-existed links and duplicates within `links`.
    if (!damaged.remove_edge(link.u, link.v)) {
      throw std::invalid_argument(
          "simulate_multi_link_failure: no such link (or duplicate)");
    }
  }
  return assess(net, damaged, /*ignore_endpoint=*/net.num_pops());
}

FailureImpact simulate_pop_failure(const Network& net, NodeId pop) {
  if (pop >= net.num_pops()) {
    throw std::out_of_range("simulate_pop_failure: no such PoP");
  }
  Topology damaged = net.topology;
  // Iterating the intact topology's neighbour view while mutating the copy
  // is safe — but fetch it once into the loop over the *source* graph.
  for (const NodeId u : net.topology.neighbors(pop)) {
    damaged.remove_edge(pop, u);
  }
  return assess(net, damaged, pop);
}

std::vector<FailureImpact> single_link_failure_sweep(const Network& net) {
  std::vector<FailureImpact> sweep;
  sweep.reserve(net.links.size());
  for (const Link& l : net.links) {
    sweep.push_back(simulate_link_failure(net, l.edge));
  }
  return sweep;
}

FailureSweepSummary summarize_sweep(const std::vector<FailureImpact>& sweep) {
  FailureSweepSummary s;
  s.scenarios = sweep.size();
  double rerouted = 0.0;
  for (const FailureImpact& f : sweep) {
    if (f.disconnected) ++s.disconnecting;
    if (f.total_traffic > 0) rerouted += f.traffic_rerouted / f.total_traffic;
    s.worst_stretch = std::max(s.worst_stretch, f.worst_stretch);
    s.worst_utilization = std::max(s.worst_utilization, f.max_utilization);
  }
  s.mean_rerouted_fraction =
      sweep.empty() ? 0.0 : rerouted / static_cast<double>(sweep.size());
  return s;
}

}  // namespace cold
