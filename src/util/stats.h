// Summary statistics and bootstrap confidence intervals.
//
// The paper reports 95% bootstrap confidence intervals for the mean on every
// sweep figure (Figs 3, 5-9); this module provides exactly that.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cold {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Mean/stddev/min/max of a sample. Returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& xs);

/// q-th quantile (0 <= q <= 1) by linear interpolation between order
/// statistics. Throws on empty input.
double quantile(std::vector<double> xs, double q);

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap CI for the mean (the method used in the paper's
/// error bars). `level` is the two-sided coverage, e.g. 0.95.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     double level = 0.95,
                                     int resamples = 1000,
                                     std::uint64_t seed = 12345);

/// Streaming moments of one scalar metric: count/mean/M2 (Welford) plus
/// min/max, in O(1) state. This is what lets ensemble aggregation run
/// memory-flat — fold() one value at a time, never retaining the sample.
/// Folding the same values in the same order is deterministic (pure FP
/// recurrence), so a streamed pass and a post-hoc pass over retained values
/// produce bit-identical aggregates.
struct MetricAggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean
  double min = 0.0;
  double max = 0.0;

  void fold(double x) {
    if (count == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    ++count;
    const double d = x - mean;
    mean += d / static_cast<double>(count);
    m2 += d * (x - mean);
  }

  /// Sample variance (n-1 denominator); 0 with fewer than two values.
  double variance() const {
    return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
  }
  double stddev() const;
};

/// Two-sided normal-approximation CI for the mean from streamed moments:
/// mean +/- z * stddev / sqrt(n). The streamed-mode stand-in for
/// bootstrap_mean_ci (which needs the full sample); the two agree
/// asymptotically but are not bit-identical.
ConfidenceInterval normal_mean_ci(const MetricAggregate& agg,
                                  double level = 0.95);

/// Quantile function of the standard normal (probit), by bisection on
/// std::erf — deterministic, ~1e-12 accurate. `p` in (0, 1).
double normal_quantile(double p);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Coefficient of variation (stddev / mean); 0 if the mean is 0.
double coefficient_of_variation(const std::vector<double>& xs);

/// Shannon entropy (nats) of a discrete empirical distribution given by
/// non-negative weights; 0 for degenerate input.
double entropy(const std::vector<double>& weights);

/// Histogram with `bins` equal-width bins over [lo, hi]. Values outside the
/// range are clamped into the first/last bin. Returns per-bin counts.
std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins);

/// Log-spaced grid of `count` points from lo to hi inclusive (lo, hi > 0).
std::vector<double> log_space(double lo, double hi, std::size_t count);

/// Linearly spaced grid of `count` points from lo to hi inclusive.
std::vector<double> lin_space(double lo, double hi, std::size_t count);

}  // namespace cold
