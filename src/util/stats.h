// Summary statistics and bootstrap confidence intervals.
//
// The paper reports 95% bootstrap confidence intervals for the mean on every
// sweep figure (Figs 3, 5-9); this module provides exactly that.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cold {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Mean/stddev/min/max of a sample. Returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& xs);

/// q-th quantile (0 <= q <= 1) by linear interpolation between order
/// statistics. Throws on empty input.
double quantile(std::vector<double> xs, double q);

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap CI for the mean (the method used in the paper's
/// error bars). `level` is the two-sided coverage, e.g. 0.95.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     double level = 0.95,
                                     int resamples = 1000,
                                     std::uint64_t seed = 12345);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Coefficient of variation (stddev / mean); 0 if the mean is 0.
double coefficient_of_variation(const std::vector<double>& xs);

/// Shannon entropy (nats) of a discrete empirical distribution given by
/// non-negative weights; 0 for degenerate input.
double entropy(const std::vector<double>& weights);

/// Histogram with `bins` equal-width bins over [lo, hi]. Values outside the
/// range are clamped into the first/last bin. Returns per-bin counts.
std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins);

/// Log-spaced grid of `count` points from lo to hi inclusive (lo, hi > 0).
std::vector<double> log_space(double lo, double hi, std::size_t count);

/// Linearly spaced grid of `count` points from lo to hi inclusive.
std::vector<double> lin_space(double lo, double hi, std::size_t count);

}  // namespace cold
