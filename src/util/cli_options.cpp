#include "util/cli_options.h"

#include <stdexcept>

namespace cold {

CliOptions::CliOptions(std::string command, std::vector<OptionSpec> specs)
    : command_(std::move(command)), specs_(std::move(specs)) {}

const OptionSpec* CliOptions::find(const std::string& name) const {
  for (const OptionSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string CliOptions::valid_options() const {
  std::string out;
  for (const OptionSpec& spec : specs_) {
    if (!out.empty()) out += ", ";
    out += "--" + spec.name;
  }
  return out;
}

void CliOptions::parse(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + arg +
                                  " (options start with --)");
    }
    arg = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const OptionSpec* spec = find(arg);
    if (spec == nullptr) {
      throw std::invalid_argument("unknown option --" + arg + " for '" +
                                  command_ +
                                  "'; valid options: " + valid_options());
    }
    if (!spec->takes_value) {
      if (has_inline) {
        throw std::invalid_argument("option --" + arg +
                                    " is a flag and takes no value");
      }
      values_[arg] = "";
      continue;
    }
    if (has_inline) {
      values_[arg] = inline_value;
    } else if (i + 1 < argc) {
      values_[arg] = argv[++i];
    } else {
      throw std::invalid_argument("option --" + arg + " needs a value");
    }
  }
}

std::string CliOptions::get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double CliOptions::num(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::size_t CliOptions::uint(const std::string& key,
                             std::size_t fallback) const {
  const double value =
      num(key, static_cast<double>(fallback));
  if (value < 0) {
    throw std::invalid_argument("option --" + key + " must be >= 0");
  }
  return static_cast<std::size_t>(value);
}

std::vector<OptionSpec> concat_specs(
    std::initializer_list<std::vector<OptionSpec>> groups) {
  std::vector<OptionSpec> out;
  for (const auto& group : groups) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

}  // namespace cold
