#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cold {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& xs,
                                     double level, int resamples,
                                     std::uint64_t seed) {
  ConfidenceInterval ci;
  if (xs.empty()) return ci;
  ci.mean = summarize(xs).mean;
  if (xs.size() == 1) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  Rng rng(seed, 0xb00b00);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum += xs[rng.uniform_index(xs.size())];
    }
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(means, alpha);
  ci.hi = quantile(means, 1.0 - alpha);
  return ci;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

double coefficient_of_variation(const std::vector<double>& xs) {
  const Summary s = summarize(xs);
  if (s.mean == 0.0) return 0.0;
  return s.stddev / s.mean;
}

double entropy(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("entropy: negative weight");
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      const double p = w / total;
      h -= p * std::log(p);
    }
  }
  return h;
}

std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo,
                                   double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("histogram: need bins > 0 and hi > lo");
  }
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto b = static_cast<std::ptrdiff_t>((x - lo) / width);
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  return counts;
}

std::vector<double> log_space(double lo, double hi, std::size_t count) {
  if (lo <= 0 || hi <= 0) throw std::invalid_argument("log_space: need lo, hi > 0");
  if (count == 0) return {};
  if (count == 1) return {lo};
  std::vector<double> out;
  out.reserve(count);
  const double step = (std::log(hi) - std::log(lo)) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(std::exp(std::log(lo) + step * static_cast<double>(i)));
  }
  return out;
}

double MetricAggregate::stddev() const { return std::sqrt(variance()); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0, 1)");
  }
  // Phi(x) = (1 + erf(x / sqrt(2))) / 2 is monotone; bisect Phi(x) = p.
  // 60 halvings of [-16, 16] reach ~1e-17 interval width — below double
  // resolution over this range, and deterministic on every platform.
  double lo = -16.0, hi = 16.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double cdf = 0.5 * (1.0 + std::erf(mid / std::sqrt(2.0)));
    if (cdf < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval normal_mean_ci(const MetricAggregate& agg, double level) {
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("normal_mean_ci: level must be in (0, 1)");
  }
  ConfidenceInterval ci;
  ci.mean = agg.mean;
  ci.lo = ci.hi = agg.mean;
  if (agg.count < 2) return ci;
  const double z = normal_quantile(0.5 + level / 2.0);
  const double half =
      z * agg.stddev() / std::sqrt(static_cast<double>(agg.count));
  ci.lo = agg.mean - half;
  ci.hi = agg.mean + half;
  return ci;
}

std::vector<double> lin_space(double lo, double hi, std::size_t count) {
  if (count == 0) return {};
  if (count == 1) return {lo};
  std::vector<double> out;
  out.reserve(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  return out;
}

}  // namespace cold
