#include "util/rng.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cold {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 finalizer applied to seed, then xor-folded with the stream
  // put through the same mix. Distinct (seed, stream) pairs land far apart.
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(seed) ^ mix(mix(stream) + 0x632be59bd9b4e019ULL);
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t x;
  do {
    x = engine_();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // guard log(0); uniform() < 1 by construction
  return -mean * std::log(u);
}

double Rng::pareto_with_mean(double alpha, double mean) {
  if (alpha <= 1.0) {
    throw std::invalid_argument("pareto_with_mean: alpha must be > 1");
  }
  const double scale = mean * (alpha - 1.0) / alpha;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / alpha);
}

int Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("geometric: p must be in (0, 1]");
  }
  if (p == 1.0) return 0;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

int Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int k = -1;
    do {
      ++k;
      prod *= uniform();
    } while (prod > limit);
    return k;
  }
  // Normal approximation with continuity correction, adequate for the
  // cluster sizes used in the bursty point process.
  const int k = static_cast<int>(std::lround(mean + std::sqrt(mean) * normal()));
  return k < 0 ? 0 : k;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("weighted_index: all weights are zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return the last item
}

}  // namespace cold
