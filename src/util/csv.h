// Aligned console tables and CSV emission for the benchmark harnesses.
//
// Every bench binary prints (a) a human-readable aligned table mirroring the
// paper's figure/table, and (b) a machine-readable CSV block for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace cold {

/// A cell is a string, an integer, or a double (formatted with %.6g).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Writes an aligned, human-readable table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields with commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

  /// Convenience: aligned table, then a "# CSV" block, to `os`.
  void print_both(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a Cell for display.
std::string format_cell(const Cell& cell);

}  // namespace cold
