#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace cold {

std::size_t ParallelConfig::resolved_threads() const {
  if (num_threads > 0) return num_threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  cursors_ = std::make_unique<std::atomic<std::size_t>[]>(num_threads);
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::work(std::size_t worker) {
  // body_/end_ are stable for the duration of the job: the caller published
  // them under the mutex before bumping epoch_, and clears them only after
  // every worker has decremented active_.
  if (queues_ != nullptr) {
    work_assigned(worker);
    return;
  }
  const auto* body = body_;
  const std::size_t end = end_;
  std::size_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < end) {
    try {
      (*body)(i, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
      next_.store(end, std::memory_order_relaxed);  // stop handing out work
    }
  }
}

void ThreadPool::work_assigned(std::size_t worker) {
  const std::vector<std::vector<std::size_t>>& queues = *queues_;
  const auto* body = body_;
  const std::size_t num_queues = queues.size();
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  // d == 0 drains this worker's own queue; d > 0 steals round-robin. Every
  // position is handed out exactly once (fetch_add on the queue's cursor),
  // so stealing never duplicates or drops an index, for any interleaving.
  for (std::size_t d = 0; d < num_queues; ++d) {
    const std::size_t q = (worker + d) % num_queues;
    const std::vector<std::size_t>& queue = queues[q];
    std::size_t k;
    while ((k = cursors_[q].fetch_add(1, std::memory_order_relaxed)) <
           queue.size()) {
      try {
        (*body)(queue[k], worker);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
        // Stop handing out work: exhaust every cursor.
        for (std::size_t j = 0; j < num_queues; ++j) {
          cursors_[j].store(queues[j].size(), std::memory_order_relaxed);
        }
      }
      ++executed;
      if (d != 0) ++stolen;
    }
  }
  if (steal_stats_ != nullptr) {
    // Slot-owned writes: worker w only touches index w.
    steal_stats_->executed[worker] += executed;
    steal_stats_->stolen[worker] += stolen;
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lk.unlock();
    work(worker);
    lk.lock();
    if (--active_ == 0) {
      lk.unlock();
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin == 1) {
    // Inline path: no publication, no join, exceptions propagate directly.
    for (std::size_t i = begin; i < end; ++i) body(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    next_.store(begin, std::memory_order_relaxed);
    end_ = end;
    error_ = nullptr;
    active_ = workers_.size();
    ++epoch_;
  }
  wake_cv_.notify_all();
  work(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for_assigned(
    const std::vector<std::vector<std::size_t>>& queues,
    const std::function<void(std::size_t, std::size_t)>& body,
    StealStats* stats) {
  if (queues.size() != size()) {
    throw std::invalid_argument(
        "parallel_for_assigned: need exactly one queue per worker");
  }
  if (stats != nullptr) {
    stats->executed.assign(size(), 0);
    stats->stolen.assign(size(), 0);
  }
  std::size_t total = 0;
  for (const auto& q : queues) total += q.size();
  if (total == 0) return;
  for (std::size_t q = 0; q < queues.size(); ++q) {
    cursors_[q].store(0, std::memory_order_relaxed);
  }
  if (workers_.empty()) {
    // Inline path: the caller drains its own queue, then "steals" the rest
    // in round-robin order — the same visit order the threaded path gives
    // worker 0. Exceptions propagate through error_ for uniformity with the
    // threaded path (the body may have advanced other cursors).
    queues_ = &queues;
    body_ = &body;
    steal_stats_ = stats;
    error_ = nullptr;
    work_assigned(0);
    queues_ = nullptr;
    body_ = nullptr;
    steal_stats_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    queues_ = &queues;
    steal_stats_ = stats;
    error_ = nullptr;
    active_ = workers_.size();
    ++epoch_;
  }
  wake_cv_.notify_all();
  work(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  body_ = nullptr;
  queues_ = nullptr;
  steal_stats_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::run_tasks(const std::vector<std::function<void()>>& tasks) {
  parallel_for(0, tasks.size(),
               [&tasks](std::size_t i, std::size_t) { tasks[i](); });
}

}  // namespace cold
