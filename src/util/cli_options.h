// Strict command-line option parsing for the cold tools.
//
// Each subcommand declares the exact set of options it accepts (OptionSpec);
// parsing rejects anything outside that set with an error that lists the
// valid options, instead of silently ignoring a typo like `--generation`.
// Both `--key value` and `--key=value` spellings are accepted; options with
// takes_value == false are boolean flags (`--progress`).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace cold {

struct OptionSpec {
  std::string name;        ///< without the leading "--"
  bool takes_value = true; ///< false = boolean flag
  std::string help;        ///< short value hint, e.g. "N (30)"
};

/// Parsed options of one subcommand invocation.
class CliOptions {
 public:
  CliOptions(std::string command, std::vector<OptionSpec> specs);

  /// Parses argv[first..argc). Throws std::invalid_argument on an option
  /// not in the spec list (message names every valid option), a missing
  /// value, a value handed to a flag, or a stray positional argument.
  void parse(int argc, const char* const* argv, int first);

  const std::string& command() const { return command_; }
  const std::vector<OptionSpec>& specs() const { return specs_; }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric option; throws std::invalid_argument on a malformed number.
  double num(const std::string& key, double fallback) const;

  /// Non-negative integer option (counts, sizes, seeds).
  std::size_t uint(const std::string& key, std::size_t fallback) const;

  /// "--a, --b, --c" — used in error messages and usage text.
  std::string valid_options() const;

 private:
  const OptionSpec* find(const std::string& name) const;

  std::string command_;
  std::vector<OptionSpec> specs_;
  std::map<std::string, std::string> values_;
};

/// Concatenates spec lists (shared groups + per-command extras).
std::vector<OptionSpec> concat_specs(
    std::initializer_list<std::vector<OptionSpec>> groups);

}  // namespace cold
