// A small fixed-size thread pool for COLD's evaluation engine.
//
// Design goals, in order: (1) determinism — callers write results into
// per-index slots and aggregate after the join, so outputs never depend on
// scheduling; (2) zero dependencies — std::thread only; (3) the caller
// participates as worker 0, so a pool of size 1 spawns no threads and runs
// the body inline, reproducing single-threaded behavior exactly.
//
// Work distribution is a shared atomic cursor (dynamic self-scheduling, one
// index at a time). COLD's work items — a Dijkstra sweep per candidate
// topology, or a whole synthesis run — are large enough that cursor
// contention is noise, and dynamic scheduling absorbs the heavy variance
// between items (a repaired sparse mutant costs far less than a dense one).
//
// parallel_for_assigned adds affinity scheduling on top: the caller hands
// each worker a preferred queue of indices (e.g. "the offspring whose
// retained parent state lives on this worker"), each worker drains its own
// queue through a per-queue atomic cursor, and idle workers steal from the
// other queues round-robin — so a skewed assignment degrades to balanced
// dynamic scheduling instead of serializing on one thread. Queues are fixed
// before the job starts and cursors only hand out each index once, which
// makes the stealing trivially exactly-once; determinism still comes from
// the caller's slot-owned writes, never from the interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cold {

/// User-facing parallelism knob, threaded through GaConfig, SynthesisConfig
/// and the bench harness. `num_threads == 0` means "all hardware threads";
/// `1` means fully sequential. Any value yields bit-identical results — the
/// knob trades wall-clock only.
struct ParallelConfig {
  std::size_t num_threads = 0;

  /// The actual worker count: num_threads, or hardware_concurrency() (at
  /// least 1) when num_threads is 0.
  std::size_t resolved_threads() const;
};

/// Per-worker execution counters filled by parallel_for_assigned.
/// Conservation invariants (checked by the scheduler tests): the executed
/// counts sum to the total number of queued indices, and stolen[w] counts
/// the subset of executed[w] taken from another worker's queue, so
/// stolen[w] <= executed[w] always.
struct StealStats {
  std::vector<std::uint64_t> executed;  ///< items run, by executing worker
  std::vector<std::uint64_t> stolen;    ///< of those, from another queue

  std::uint64_t total_executed() const {
    std::uint64_t t = 0;
    for (const std::uint64_t e : executed) t += e;
    return t;
  }
  std::uint64_t total_stolen() const {
    std::uint64_t t = 0;
    for (const std::uint64_t s : stolen) t += s;
    return t;
  }
};

/// Fixed-size pool. `size()` counts the calling thread, so `ThreadPool(4)`
/// spawns 3 workers and `ThreadPool(1)` spawns none. Not reentrant: do not
/// call parallel_for from inside a body running on the same pool.
class ThreadPool {
 public:
  /// `num_threads == 0` resolves to hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executing threads (spawned workers + the caller).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(i, worker) for every i in [begin, end), distributing indices
  /// across all threads; `worker` is in [0, size()) and identifies the
  /// executing thread (for indexing per-thread scratch). Blocks until every
  /// index has run. If any body throws, the first exception is rethrown
  /// here after the join (remaining indices may be skipped).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t index,
                                             std::size_t worker)>& body);

  /// Affinity-scheduled variant of parallel_for. `queues[w]` lists the
  /// indices preferred to run on worker w (queues.size() must equal
  /// size(); an index must appear in exactly one queue). Worker w drains
  /// queues[w] in order through a per-queue atomic cursor, then steals from
  /// the other queues round-robin (w+1, w+2, ...) until everything has run,
  /// so no thread idles while work remains — even when one queue holds all
  /// the items. The body contract is parallel_for's: body(i, worker) runs
  /// exactly once per queued index i, `worker` identifies the executing
  /// thread. `stats`, if non-null, is resized to size() and receives
  /// per-worker executed/stolen counts (see StealStats). Exceptions behave
  /// like parallel_for's: the first one is rethrown after the join.
  void parallel_for_assigned(
      const std::vector<std::vector<std::size_t>>& queues,
      const std::function<void(std::size_t index, std::size_t worker)>& body,
      StealStats* stats = nullptr);

  /// Task-batch submit: runs every task once, in parallel, and joins.
  /// Tasks needing per-thread scratch should use parallel_for instead.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop(std::size_t worker);
  void work(std::size_t worker);
  void work_assigned(std::size_t worker);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< signals workers: new job or stop
  std::condition_variable done_cv_;  ///< signals caller: all workers idle

  // Current job; valid between parallel_for's publish and its join.
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> next_{0};  ///< shared work cursor
  std::size_t end_ = 0;
  // Assigned-queue job state (parallel_for_assigned); queues_ == nullptr
  // means the current job is a plain parallel_for. cursors_[q] hands out
  // positions in queues_[q]; sized size() once, in the constructor.
  const std::vector<std::vector<std::size_t>>* queues_ = nullptr;
  std::unique_ptr<std::atomic<std::size_t>[]> cursors_;
  StealStats* steal_stats_ = nullptr;
  std::size_t active_ = 0;   ///< workers still inside the current job
  std::uint64_t epoch_ = 0;  ///< job counter; a change wakes the workers
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace cold
