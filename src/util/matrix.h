// Small dense matrix used for traffic matrices, distance matrices and
// routing tables. Row-major, value semantics, bounds-checked via at().
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace cold {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix square(std::size_t n, T init = T{}) { return Matrix(n, n, init); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage (e.g. for accumulation loops).
  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix::at: index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace cold
