#include "util/csv.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cold {

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_cell(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(cell));
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& cells : formatted) print_row(cells);
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
}

void Table::print_both(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n";
  print(os);
  os << "\n# CSV: " << title << '\n';
  print_csv(os);
  os << '\n';
}

}  // namespace cold
