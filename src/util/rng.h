// Deterministic random number generation for COLD.
//
// Everything stochastic in this library draws from a cold::Rng so that a
// single 64-bit seed reproduces an entire synthesis run bit-for-bit
// (networks, traffic matrices, GA trajectories).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cold {

/// Mixes a seed and a stream id into a well-distributed 64-bit state.
/// SplitMix64 finalizer; used so that seed 0/1/2... give unrelated streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream = 0);

/// Random number generator with the distributions the paper needs.
///
/// A thin, deterministic wrapper over std::mt19937_64. Distribution sampling
/// is implemented explicitly (not via the std distribution objects whose
/// algorithms are implementation-defined) so results are identical across
/// standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0, std::uint64_t stream = 0)
      : engine_(mix_seed(seed, stream)) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Pareto with shape alpha and given mean; requires alpha > 1 so the mean
  /// exists. Scale is derived as mean * (alpha - 1) / alpha.
  double pareto_with_mean(double alpha, double mean);

  /// Geometric: number of failures before first success, p in (0, 1].
  /// Matches the paper's mutate_fn() with p = 0.5 (mean 1 per draw).
  int geometric(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Poisson with the given mean (inversion for small, normal approx for
  /// large means).
  int poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Raw 64 random bits (for deriving child seeds).
  std::uint64_t next_u64() { return engine_(); }

  /// Derives an independent child RNG; deterministic given this Rng's state.
  Rng spawn() { return Rng(next_u64(), next_u64()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cold
