// The Network product type — COLD's output is "a network, not just an
// abstract graph" (paper criterion 5): topology plus PoP coordinates, link
// lengths, link capacities sized from routed traffic, and (optionally) the
// routing matrix.
//
// Matrix-free currencies: `traffic` is a CompressedTraffic (CSR) and
// `lengths` a DistanceProvider, both value types over shared immutable
// cores, so a Network is O(n + m + nnz) resident — the only remaining n^2
// object is the next-hop matrix, which NetworkBuildOptions gates off above
// the dense threshold (kAuto) or on demand (kNever).
#pragma once

#include <vector>

#include "geom/distance.h"
#include "geom/point.h"
#include "graph/topology.h"
#include "net/multipath.h"
#include "traffic/gravity.h"
#include "util/matrix.h"

namespace cold {

/// One inter-PoP link with its synthesis-produced attributes.
struct Link {
  Edge edge;             ///< canonical endpoints (u < v)
  double length = 0.0;   ///< physical length
  double load = 0.0;     ///< w_i: bandwidth required by routed traffic
  double capacity = 0.0; ///< provisioned capacity = overprovision * load
};

/// A synthesized PoP-level network.
struct Network {
  Topology topology;
  std::vector<Point> locations;        ///< PoP coordinates
  std::vector<double> populations;     ///< gravity-model populations
  CompressedTraffic traffic;           ///< demand matrix used in synthesis
  DistanceProvider lengths;            ///< PoP distances (dense at small n)
  std::vector<Link> links;             ///< aligned with topology.edges()
  Matrix<NodeId> routing;              ///< next-hop matrix; may be empty
  double overprovision = 1.0;          ///< the paper's capacity factor O

  std::size_t num_pops() const { return topology.num_nodes(); }
  std::size_t num_links() const { return links.size(); }

  /// Whether the n^2 next-hop matrix was materialized (see
  /// NetworkBuildOptions::materialize_routing).
  bool has_routing() const { return !routing.empty(); }

  /// Capacity of link {a, b}; throws if the link does not exist.
  double link_capacity(NodeId a, NodeId b) const;

  /// Maximum link utilization (load / capacity) over all links; 0 if there
  /// are no links or all capacities are 0.
  double max_utilization() const;
};

/// Tuning for build_network beyond the topology and context.
struct NetworkBuildOptions {
  double overprovision = 1.0;  ///< the paper's capacity factor O (>= 1)

  /// Whether to materialize the n^2 next-hop matrix (8 n^2 bytes — 800 MB
  /// at n = 10000). kAuto mirrors the solver policy: materialize only up to
  /// Topology::dense_auto_threshold() nodes; beyond it `routing` stays
  /// empty and path queries should recompute trees on demand.
  enum class Routing { kAuto, kAlways, kNever };
  Routing materialize_routing = Routing::kAuto;

  /// How link loads (and therefore capacities) are computed: single
  /// shortest path, ECMP or WCMP splitting (net/multipath.h). Must match
  /// the objective's routing mode so the built network's capacities
  /// provision exactly the loads synthesis optimized for. On
  /// unique-shortest-path topologies every mode yields bit-identical loads.
  MultipathMode multipath = MultipathMode::kOff;
};

/// Assembles a Network from a connected topology, locations and traffic:
/// computes lengths, routes all demands, sizes capacities with the given
/// overprovisioning factor, and (subject to options) fills the routing
/// matrix. Throws std::invalid_argument if the topology is disconnected or
/// shapes mismatch.
Network build_network(const Topology& topology,
                      const std::vector<Point>& locations,
                      const std::vector<double>& populations,
                      const CompressedTraffic& traffic,
                      const NetworkBuildOptions& options);

/// Convenience overload with default routing policy (kAuto).
Network build_network(const Topology& topology,
                      const std::vector<Point>& locations,
                      const std::vector<double>& populations,
                      const CompressedTraffic& traffic,
                      double overprovision = 1.0);

/// Validates internal consistency (shapes, link alignment, capacity =
/// overprovision * load, routing delivers every demand when materialized).
/// Throws std::logic_error with a description on failure. Used in tests and
/// after deserialization.
void validate_network(const Network& net);

}  // namespace cold
