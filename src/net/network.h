// The Network product type — COLD's output is "a network, not just an
// abstract graph" (paper criterion 5): topology plus PoP coordinates, link
// lengths, link capacities sized from routed traffic, and the routing
// matrix.
#pragma once

#include <vector>

#include "geom/point.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

/// One inter-PoP link with its synthesis-produced attributes.
struct Link {
  Edge edge;             ///< canonical endpoints (u < v)
  double length = 0.0;   ///< physical length
  double load = 0.0;     ///< w_i: bandwidth required by routed traffic
  double capacity = 0.0; ///< provisioned capacity = overprovision * load
};

/// A synthesized PoP-level network.
struct Network {
  Topology topology;
  std::vector<Point> locations;        ///< PoP coordinates
  std::vector<double> populations;     ///< gravity-model populations
  Matrix<double> traffic;              ///< demand matrix used in synthesis
  Matrix<double> lengths;              ///< full PoP distance matrix
  std::vector<Link> links;             ///< aligned with topology.edges()
  Matrix<NodeId> routing;              ///< next-hop matrix
  double overprovision = 1.0;          ///< the paper's capacity factor O

  std::size_t num_pops() const { return topology.num_nodes(); }
  std::size_t num_links() const { return links.size(); }

  /// Capacity of link {a, b}; throws if the link does not exist.
  double link_capacity(NodeId a, NodeId b) const;

  /// Maximum link utilization (load / capacity) over all links; 0 if there
  /// are no links or all capacities are 0.
  double max_utilization() const;
};

/// Assembles a Network from a connected topology, locations and traffic:
/// computes lengths, routes all demands, sizes capacities with the given
/// overprovisioning factor, and fills the routing matrix. Throws
/// std::invalid_argument if the topology is disconnected or shapes mismatch.
Network build_network(const Topology& topology,
                      const std::vector<Point>& locations,
                      const std::vector<double>& populations,
                      const Matrix<double>& traffic,
                      double overprovision = 1.0);

/// Validates internal consistency (shapes, link alignment, capacity =
/// overprovision * load, routing delivers every demand). Throws
/// std::logic_error with a description on failure. Used in tests and after
/// deserialization.
void validate_network(const Network& net);

}  // namespace cold
