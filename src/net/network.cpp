#include "net/network.h"

#include <cmath>
#include <stdexcept>

#include "geom/distance.h"
#include "graph/algorithms.h"
#include "net/multipath.h"
#include "net/routing.h"

namespace cold {

double Network::link_capacity(NodeId a, NodeId b) const {
  const Edge e = make_edge(a, b);
  for (const Link& l : links) {
    if (l.edge == e) return l.capacity;
  }
  throw std::invalid_argument("link_capacity: no such link");
}

double Network::max_utilization() const {
  double worst = 0.0;
  for (const Link& l : links) {
    if (l.capacity > 0.0) worst = std::max(worst, l.load / l.capacity);
  }
  return worst;
}

Network build_network(const Topology& topology,
                      const std::vector<Point>& locations,
                      const std::vector<double>& populations,
                      const CompressedTraffic& traffic,
                      const NetworkBuildOptions& options) {
  const std::size_t n = topology.num_nodes();
  if (locations.size() != n || populations.size() != n ||
      traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("build_network: shape mismatch");
  }
  if (!is_connected(topology)) {
    throw std::invalid_argument("build_network: topology is disconnected");
  }
  if (options.overprovision < 1.0) {
    throw std::invalid_argument("build_network: overprovision must be >= 1");
  }

  Network net;
  net.topology = topology;
  net.locations = locations;
  net.populations = populations;
  net.traffic = traffic;
  // Dense only at small n (DistanceProvider::from_points mirrors the solver
  // threshold); at scale the provider recomputes lengths from coordinates.
  net.lengths = DistanceProvider::from_points(locations);
  net.overprovision = options.overprovision;

  EdgeLoads loads;
  RoutingWorkspace ws;
  if (!route_loads_multipath(topology, net.lengths, net.traffic,
                             options.multipath, loads, ws)) {
    throw std::logic_error("build_network: routing failed on connected graph");
  }
  for (const Edge& e : topology.edges()) {
    Link link;
    link.edge = e;
    link.length = net.lengths(e.u, e.v);
    link.load = loads.at(e.u, e.v);
    link.capacity = options.overprovision * link.load;
    net.links.push_back(link);
  }
  const bool want_routing =
      options.materialize_routing == NetworkBuildOptions::Routing::kAlways ||
      (options.materialize_routing == NetworkBuildOptions::Routing::kAuto &&
       n <= Topology::dense_auto_threshold());
  if (want_routing) {
    net.routing = routing_matrix(topology, net.lengths, ws);
  }
  return net;
}

Network build_network(const Topology& topology,
                      const std::vector<Point>& locations,
                      const std::vector<double>& populations,
                      const CompressedTraffic& traffic,
                      double overprovision) {
  NetworkBuildOptions options;
  options.overprovision = overprovision;
  return build_network(topology, locations, populations, traffic, options);
}

void validate_network(const Network& net) {
  const std::size_t n = net.topology.num_nodes();
  if (net.locations.size() != n) throw std::logic_error("locations size");
  if (net.populations.size() != n) throw std::logic_error("populations size");
  if (net.traffic.rows() != n || net.traffic.cols() != n) {
    throw std::logic_error("traffic shape");
  }
  if (net.lengths.rows() != n || net.lengths.cols() != n) {
    throw std::logic_error("lengths shape");
  }
  if (!is_connected(net.topology)) throw std::logic_error("disconnected");
  const auto edges = net.topology.edges();
  if (edges.size() != net.links.size()) throw std::logic_error("link count");
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Link& l = net.links[i];
    if (l.edge != edges[i]) throw std::logic_error("link order");
    if (std::abs(l.length - net.lengths(l.edge.u, l.edge.v)) > 1e-12) {
      throw std::logic_error("link length");
    }
    if (l.load < 0) throw std::logic_error("negative load");
    const double want = net.overprovision * l.load;
    if (std::abs(l.capacity - want) > 1e-9 * std::max(1.0, want)) {
      throw std::logic_error("capacity != overprovision * load");
    }
  }
  // Routing must deliver every demand over existing links — when the
  // next-hop matrix was materialized at all (it is optional above the
  // dense threshold).
  if (!net.has_routing()) return;
  if (net.routing.rows() != n || net.routing.cols() != n) {
    throw std::logic_error("routing shape");
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto path = route_path(net.routing, s, t);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (!net.topology.has_edge(path[i], path[i + 1])) {
          throw std::logic_error("route uses a non-existent link");
        }
      }
    }
  }
}

}  // namespace cold
