// Multipath (ECMP / WCMP) routing and link-load computation.
//
// The single-path engine (net/routing.h) pushes every demand down one
// shortest-path tree. The multipath engine routes over the *shortest-path
// DAG* instead: extract_shortest_path_dag (graph/shortest_paths.h) lists,
// for every node, all equal-cost predecessors under the composite
// (dist, hops, id) settle key — an epsilon-free, purely bitwise tie rule —
// and the scatter splits each node's flow across them:
//
//   * ECMP: equally — each of k predecessors carries flow/k;
//   * WCMP: proportional to downstream capacity, proxied by the
//     predecessor's degree (a well-connected upstream PoP can drain more) —
//     predecessor i carries flow * deg_i / sum(deg).
//
// Determinism and exactness:
//
//   * The scatter walks nodes in reverse settle order and predecessors in
//     ascending id order — one global, thread-count-independent operation
//     order, so loads are bit-identical across {1, N} threads and
//     {dense, sparse} solvers (the trees already are).
//   * Flow conservation is bitwise, not approximate: at each branch the
//     share of the first minimum-weight predecessor is computed as
//     f - partial (partial = the floating-point sum of the other shares,
//     ascending order) rather than by its own multiply. Every other weight
//     is >= the minimum, so partial lies in [f/2 - slack, f + slack]; both
//     operands of the subtraction are then multiples of ulp(partial) within
//     a factor-4 magnitude band, making f - partial exact (generalized
//     Sterbenz), and partial + (f - partial) reconstructs f bit for bit.
//   * A node with exactly one predecessor takes that flow undivided via
//     the same add sequence accumulate_tree_loads performs — so on any
//     topology whose shortest paths are all unique, ECMP (and WCMP) loads
//     are bit-identical to the single-path engine's. This is the
//     equivalence anchor the tests and the CI smoke step verify.
#pragma once

#include <cstdint>

#include "net/routing.h"

namespace cold {

/// Which load-splitting rule the routing engine applies.
enum class MultipathMode {
  kOff,   ///< single shortest path per demand (the classic engine)
  kEcmp,  ///< equal split across all equal-cost predecessors
  kWcmp,  ///< split weighted by predecessor degree (capacity proxy)
};

/// Short stable name for reports/CLI ("off", "ecmp", "wcmp").
const char* multipath_mode_name(MultipathMode mode);

/// Counters for multipath routing work, merged across Evaluator clones via
/// merge_stats() like DeltaStats/ResilienceStats.
struct MultipathStats {
  std::uint64_t sweeps = 0;         ///< full n-source multipath sweeps
  std::uint64_t branch_points = 0;  ///< (source, node) pairs with >= 2 preds
  std::uint64_t dag_edges = 0;      ///< predecessor links across all DAGs

  MultipathStats& operator+=(const MultipathStats& other) {
    sweeps += other.sweeps;
    branch_points += other.branch_points;
    dag_edges += other.dag_edges;
    return *this;
  }
};

/// The per-source half of route_loads_multipath: pushes row `s` of
/// `traffic` down the shortest-path DAG `dag` (extracted from `tree`, which
/// must span all n nodes), splitting at every branch per `mode` and
/// accumulating into `loads`. Exposed so the delta evaluation engine can
/// aggregate repaired trees through the same code path. `aggregate` and
/// `split` are caller scratch (resized here). `stats`, when non-null,
/// accrues branch_points/dag_edges for this source.
void accumulate_dag_loads(const Topology& g, const ShortestPathTree& tree,
                          const SpDag& dag, const CompressedTraffic& traffic,
                          NodeId s, MultipathMode mode, EdgeLoads& loads,
                          std::vector<double>& aggregate,
                          std::vector<double>& split,
                          MultipathStats* stats = nullptr);

/// Multipath form of route_loads: per-link loads under ECMP/WCMP routing of
/// `traffic` over `g`. kOff forwards to route_loads verbatim. Same contract
/// otherwise: loads rebuilt from `g`, false on disconnected input (loads
/// partial, unusable), batched sweeps in increasing source order.
bool route_loads_multipath(const Topology& g, const DistanceProvider& lengths,
                           const CompressedTraffic& traffic,
                           MultipathMode mode, EdgeLoads& loads,
                           RoutingWorkspace& ws,
                           MultipathStats* stats = nullptr,
                           SpAlgorithm algo = SpAlgorithm::kAuto);

/// route_loads_multipath, but each source's tree is computed into (and left
/// in) `trees[s]` for delta-engine retention — the multipath analogue of
/// route_loads_retained. kOff forwards to route_loads_retained.
bool route_loads_multipath_retained(
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, MultipathMode mode, EdgeLoads& loads,
    std::vector<ShortestPathTree>& trees, RoutingWorkspace& ws,
    MultipathStats* stats = nullptr, SpAlgorithm algo = SpAlgorithm::kAuto);

}  // namespace cold
