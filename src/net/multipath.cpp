#include "net/multipath.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace cold {

namespace {

// Same policy as routing.cpp's helper: build the per-sweep edge-length
// cache only when the heap solver runs against a matrix-free provider.
// Entries are the exact doubles lengths() returns — bit-neutral.
const SpLengthCache* maybe_length_cache(const Topology& g,
                                        const DistanceProvider& lengths,
                                        SpAlgorithm algo,
                                        RoutingWorkspace& ws) {
  if (algo != SpAlgorithm::kSparse || lengths.has_dense()) return nullptr;
  ws.length_cache.build(g, lengths);
  return &ws.length_cache;
}

}  // namespace

const char* multipath_mode_name(MultipathMode mode) {
  switch (mode) {
    case MultipathMode::kEcmp:
      return "ecmp";
    case MultipathMode::kWcmp:
      return "wcmp";
    case MultipathMode::kOff:
      break;
  }
  return "off";
}

void accumulate_dag_loads(const Topology& g, const ShortestPathTree& tree,
                          const SpDag& dag, const CompressedTraffic& traffic,
                          NodeId s, MultipathMode mode, EdgeLoads& loads,
                          std::vector<double>& aggregate,
                          std::vector<double>& split, MultipathStats* stats) {
  // Reverse settle-order walk, like accumulate_tree_loads: every DAG
  // predecessor of a node has a strictly smaller composite key, hence an
  // earlier settle slot, so its aggregate is complete by the time it is
  // visited. Predecessors are scattered in ascending id order — one global
  // deterministic order regardless of solver or thread count.
  const std::size_t n = tree.dist.size();
  aggregate.assign(n, 0.0);
  const CompressedTraffic::RowSpan row = traffic.row_span(s);
  for (std::size_t k = 0; k < row.len; ++k) {
    aggregate[row.col[k]] = row.val[k];
  }
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const std::uint32_t lo = dag.off[t];
    const std::size_t k = dag.off[t + 1] - lo;
    const double f = aggregate[t];
    if (k == 1) {
      // Sole predecessor — necessarily the tree parent. The add sequence is
      // byte-for-byte accumulate_tree_loads', which is what makes ECMP
      // bit-identical to the single-path engine on unique-shortest-path
      // topologies.
      const NodeId p = dag.pred[lo];
      assert(p == tree.parent[t]);
      loads.value[loads.index_of(p, t)] += f;
      aggregate[p] += f;
      continue;
    }
    assert(k >= 2);  // every reachable non-source node has >= 1 predecessor
    if (stats != nullptr) ++stats->branch_points;
    split.resize(k);
    std::size_t r = 0;  // remainder slot: first minimum-weight predecessor
    if (mode == MultipathMode::kWcmp) {
      // Weights are predecessor degrees — small exact integers, so their
      // sum is exact and the weight comparison below is deterministic.
      double wsum = 0.0;
      double wmin = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < k; ++j) {
        const double w =
            static_cast<double>(g.neighbors(dag.pred[lo + j]).size());
        split[j] = w;
        wsum += w;
        if (w < wmin) {
          wmin = w;
          r = j;
        }
      }
      for (std::size_t j = 0; j < k; ++j) {
        if (j != r) split[j] = (f * split[j]) / wsum;
      }
    } else {
      // ECMP: all weights equal, remainder to the first predecessor.
      const double share = f / static_cast<double>(k);
      for (std::size_t j = 1; j < k; ++j) split[j] = share;
    }
    // Bitwise conservation: the remainder share is f minus the sum of the
    // others (ascending order). The minimum weight is <= wsum/2 for k >= 2,
    // so partial stays within a factor-4 band of f and the subtraction is
    // exact (see the header) — partial + split[r] == f bit for bit.
    double partial = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != r) partial += split[j];
    }
    split[r] = f - partial;
    for (std::size_t j = 0; j < k; ++j) {
      const NodeId p = dag.pred[lo + j];
      loads.value[loads.index_of(p, t)] += split[j];
      aggregate[p] += split[j];
    }
  }
}

bool route_loads_multipath(const Topology& g, const DistanceProvider& lengths,
                           const CompressedTraffic& traffic,
                           MultipathMode mode, EdgeLoads& loads,
                           RoutingWorkspace& ws, MultipathStats* stats,
                           SpAlgorithm algo) {
  if (mode == MultipathMode::kOff) {
    return route_loads(g, lengths, traffic, loads, ws, algo);
  }
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument(
        "route_loads_multipath: traffic shape mismatch");
  }
  loads.build(g);
  ws.aggregate.assign(n, 0.0);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  // Same batched block structure as route_loads: trees in lockstep blocks,
  // DAG extraction + scatter in increasing source order.
  const std::size_t bw = ws.block_width(n);
  ws.block.resize(bw);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo, cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      extract_shortest_path_dag(g, lengths, ws.block[b], ws.dag);
      if (stats != nullptr) stats->dag_edges += ws.dag.pred.size();
      accumulate_dag_loads(g, ws.block[b], ws.dag, traffic, sources[b], mode,
                           loads, ws.aggregate, ws.split, stats);
    }
  }
  if (stats != nullptr) ++stats->sweeps;
  return true;
}

bool route_loads_multipath_retained(
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, MultipathMode mode, EdgeLoads& loads,
    std::vector<ShortestPathTree>& trees, RoutingWorkspace& ws,
    MultipathStats* stats, SpAlgorithm algo) {
  if (mode == MultipathMode::kOff) {
    return route_loads_retained(g, lengths, traffic, loads, trees, ws, algo);
  }
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument(
        "route_loads_multipath_retained: traffic shape mismatch");
  }
  loads.build(g);
  trees.resize(n);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  const std::size_t bw = ws.block_width(n);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo,
                             cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      extract_shortest_path_dag(g, lengths, trees[base + b], ws.dag);
      if (stats != nullptr) stats->dag_edges += ws.dag.pred.size();
      accumulate_dag_loads(g, trees[base + b], ws.dag, traffic, sources[b],
                           mode, loads, ws.aggregate, ws.split, stats);
    }
  }
  if (stats != nullptr) ++stats->sweeps;
  return true;
}

}  // namespace cold
