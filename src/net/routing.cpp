#include "net/routing.h"

#include <limits>
#include <stdexcept>

namespace cold {

bool route_loads(const Topology& g, const Matrix<double>& lengths,
                 const Matrix<double>& traffic, Matrix<double>& loads,
                 RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  ws.aggregate.assign(n, 0.0);
  // Resolve the auto-selection once per sweep, not per source.
  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(n, g.num_edges());
  }

  // Batched sweep: compute kSpSourceBlock trees in lockstep (shared
  // cache-resident frontier state), then accumulate them in increasing
  // source order — the accumulation order fixes the floating-point result,
  // so it must match the scalar per-source loop exactly.
  ws.block.resize(kSpSourceBlock);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(ws.block[b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

void accumulate_tree_loads(const ShortestPathTree& tree,
                           const Matrix<double>& traffic, NodeId s,
                           Matrix<double>& loads,
                           std::vector<double>& aggregate) {
  // Push demands down the shortest-path tree: walking nodes in
  // decreasing-distance order, each node hands its subtree demand to its
  // parent edge. O(n) per source.
  const std::size_t n = tree.dist.size();
  aggregate.resize(n);
  for (NodeId t = 0; t < n; ++t) aggregate[t] = traffic(s, t);
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const NodeId p = tree.parent[t];
    loads(p, t) += aggregate[t];
    loads(t, p) += aggregate[t];
    aggregate[p] += aggregate[t];
  }
}

bool route_loads_retained(const Topology& g, const Matrix<double>& lengths,
                          const Matrix<double>& traffic, Matrix<double>& loads,
                          std::vector<ShortestPathTree>& trees,
                          RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads_retained: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  trees.resize(n);
  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(n, g.num_edges());
  }
  // The retained trees live in `trees` directly, so the batch kernel can
  // run over whole blocks in place; accumulation stays in increasing
  // source order for bit-identical loads.
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(trees[base + b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

double total_demand_weighted_length(const Topology& g,
                                    const Matrix<double>& lengths,
                                    const Matrix<double>& traffic,
                                    RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(n, g.num_edges());
  }
  double total = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo);
    if (ws.tree.order.size() != n) {
      return std::numeric_limits<double>::infinity();
    }
    for (NodeId t = 0; t < n; ++t) total += traffic(s, t) * ws.tree.dist[t];
  }
  return total;
}

double total_demand_weighted_length(const Topology& g,
                                    const Matrix<double>& lengths,
                                    const Matrix<double>& traffic) {
  RoutingWorkspace ws;
  return total_demand_weighted_length(g, lengths, traffic, ws);
}

Matrix<NodeId> routing_matrix(const Topology& g, const Matrix<double>& lengths,
                              RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  Matrix<NodeId> next_hop = Matrix<NodeId>::square(n, 0);
  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(n, g.num_edges());
  }
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo);
    if (ws.tree.order.size() != n) {
      throw std::invalid_argument("routing_matrix: graph is disconnected");
    }
    next_hop(s, s) = s;
    // Nodes settle in increasing-distance order, so a node's parent has
    // already had its next hop assigned.
    for (std::size_t i = 1; i < ws.tree.order.size(); ++i) {
      const NodeId t = ws.tree.order[i];
      const NodeId p = ws.tree.parent[t];
      next_hop(s, t) = (p == s) ? t : next_hop(s, p);
    }
  }
  return next_hop;
}

Matrix<NodeId> routing_matrix(const Topology& g,
                              const Matrix<double>& lengths) {
  RoutingWorkspace ws;
  return routing_matrix(g, lengths, ws);
}

std::vector<NodeId> route_path(const Matrix<NodeId>& next_hop, NodeId s,
                               NodeId t) {
  const std::size_t n = next_hop.rows();
  if (s >= n || t >= n) throw std::out_of_range("route_path: node out of range");
  std::vector<NodeId> path{s};
  NodeId v = s;
  while (v != t) {
    v = next_hop(v, t);
    path.push_back(v);
    if (path.size() > n) throw std::logic_error("route_path: routing loop");
  }
  return path;
}

}  // namespace cold
