#include "net/routing.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace cold {

namespace {

// Builds ws.length_cache when the sweep will run the heap solver against a
// matrix-free provider (the only case where relaxations would otherwise
// recompute a hypot per scanned edge); returns the cache to pass to the
// solvers, or nullptr when it isn't worth building (dense providers serve
// one load already). Cached entries are the exact doubles lengths()
// returns, so results are bit-identical with or without it.
const SpLengthCache* maybe_length_cache(const Topology& g,
                                        const DistanceProvider& lengths,
                                        SpAlgorithm algo,
                                        RoutingWorkspace& ws) {
  if (algo != SpAlgorithm::kSparse || lengths.has_dense()) return nullptr;
  ws.length_cache.build(g, lengths);
  return &ws.length_cache;
}

}  // namespace

void EdgeLoads::build(const Topology& g) {
  n = g.num_nodes();
  off.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    off[v + 1] = off[v] + g.neighbors(v).size();
  }
  adj.resize(off[n]);
  eid.resize(off[n]);
  std::uint32_t next = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t slot = off[u];
    for (const NodeId v : g.neighbors(u)) {
      adj[slot] = v;
      if (u < v) {
        // First (lexicographic) visit of the undirected edge: assign the
        // next id. Edges are therefore numbered in Topology::edges() order.
        eid[slot] = next++;
      } else {
        // Mirror slot: v < u, so v's row was fully numbered already.
        const std::size_t lo = off[v];
        const std::size_t hi = off[v + 1];
        const auto it =
            std::lower_bound(adj.begin() + static_cast<std::ptrdiff_t>(lo),
                             adj.begin() + static_cast<std::ptrdiff_t>(hi), u);
        assert(it != adj.begin() + static_cast<std::ptrdiff_t>(hi) && *it == u);
        eid[slot] = eid[static_cast<std::size_t>(it - adj.begin())];
      }
      ++slot;
    }
  }
  assert(next == g.num_edges());
  value.assign(next, 0.0);
}

void EdgeLoads::scatter(Matrix<double>& out) const {
  if (out.rows() != n || out.cols() != n) {
    out = Matrix<double>::square(n, 0.0);
  } else {
    out.fill(0.0);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t s = off[u]; s < off[u + 1]; ++s) {
      out(u, adj[s]) = value[eid[s]];
    }
  }
}

bool route_loads(const Topology& g, const DistanceProvider& lengths,
                 const CompressedTraffic& traffic, EdgeLoads& loads,
                 RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads: traffic shape mismatch");
  }
  loads.build(g);
  ws.aggregate.assign(n, 0.0);
  // Resolve the auto-selection (and dense availability) once per sweep.
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);

  // Batched sweep: compute a block of trees in lockstep (shared
  // cache-resident frontier state), then accumulate them in increasing
  // source order — the accumulation order fixes the floating-point result,
  // so it must match the scalar per-source loop exactly. The block width is
  // byte-capped (block_width), which can only change the batching, never
  // the trees.
  const std::size_t bw = ws.block_width(n);
  ws.block.resize(bw);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo, cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(ws.block[b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

bool route_loads_dense(  // deprecated-api-allowed (definition)
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, Matrix<double>& loads,
    RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  ws.aggregate.assign(n, 0.0);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  const std::size_t bw = ws.block_width(n);
  ws.block.resize(bw);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo, cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads_dense(  // deprecated-api-allowed (dense impl)
          ws.block[b], traffic, sources[b], loads, ws.aggregate);
    }
  }
  return true;
}

void accumulate_tree_loads(const ShortestPathTree& tree,
                           const CompressedTraffic& traffic, NodeId s,
                           EdgeLoads& loads, std::vector<double>& aggregate) {
  // Push demands down the shortest-path tree: walking nodes in
  // decreasing-distance order, each node hands its subtree demand to its
  // parent edge. O(n + row nnz) per source. The zero-fill + CSR row scatter
  // seeds exactly the doubles a dense row copy would (absent pairs are
  // exact zeros), and the dense form's two symmetric writes collapse into
  // the edge's single accumulator, which receives the exact same ordered
  // sequence of adds — bit-identical per canonical cell.
  const std::size_t n = tree.dist.size();
  aggregate.assign(n, 0.0);
  const CompressedTraffic::RowSpan row = traffic.row_span(s);
  for (std::size_t k = 0; k < row.len; ++k) {
    aggregate[row.col[k]] = row.val[k];
  }
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const NodeId p = tree.parent[t];
    loads.value[loads.index_of(p, t)] += aggregate[t];
    aggregate[p] += aggregate[t];
  }
}

void accumulate_tree_loads_dense(  // deprecated-api-allowed (definition)
    const ShortestPathTree& tree, const CompressedTraffic& traffic, NodeId s,
    Matrix<double>& loads, std::vector<double>& aggregate) {
  // Dense-loads walk: same order, two symmetric writes per hand-off.
  const std::size_t n = tree.dist.size();
  aggregate.assign(n, 0.0);
  const CompressedTraffic::RowSpan row = traffic.row_span(s);
  for (std::size_t k = 0; k < row.len; ++k) {
    aggregate[row.col[k]] = row.val[k];
  }
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const NodeId p = tree.parent[t];
    loads(p, t) += aggregate[t];
    loads(t, p) += aggregate[t];
    aggregate[p] += aggregate[t];
  }
}

bool route_loads_retained(const Topology& g, const DistanceProvider& lengths,
                          const CompressedTraffic& traffic, EdgeLoads& loads,
                          std::vector<ShortestPathTree>& trees,
                          RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads_retained: traffic shape mismatch");
  }
  loads.build(g);
  trees.resize(n);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  // The retained trees live in `trees` directly, so the batch kernel can
  // run over whole blocks in place; accumulation stays in increasing
  // source order for bit-identical loads.
  const std::size_t bw = ws.block_width(n);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo,
                             cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(trees[base + b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

bool route_loads_retained_dense(  // deprecated-api-allowed (definition)
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, Matrix<double>& loads,
    std::vector<ShortestPathTree>& trees, RoutingWorkspace& ws,
    SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads_retained: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  trees.resize(n);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  const std::size_t bw = ws.block_width(n);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo,
                             cache);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads_dense(  // deprecated-api-allowed (dense impl)
          trees[base + b], traffic, sources[b], loads, ws.aggregate);
    }
  }
  return true;
}

double total_demand_weighted_length(const Topology& g,
                                    const DistanceProvider& lengths,
                                    const CompressedTraffic& traffic,
                                    RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  double total = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo, cache);
    if (ws.tree.order.size() != n) {
      return std::numeric_limits<double>::infinity();
    }
    // CSR row walk: zero demands contribute exact +0.0 addends in the
    // dense loop, so skipping them is bit-neutral.
    const CompressedTraffic::RowSpan row = traffic.row_span(s);
    for (std::size_t k = 0; k < row.len; ++k) {
      total += row.val[k] * ws.tree.dist[row.col[k]];
    }
  }
  return total;
}

double total_demand_weighted_length(const Topology& g,
                                    const DistanceProvider& lengths,
                                    const CompressedTraffic& traffic) {
  RoutingWorkspace ws;
  return total_demand_weighted_length(g, lengths, traffic, ws);
}

Matrix<NodeId> routing_matrix(const Topology& g,
                              const DistanceProvider& lengths,
                              RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  Matrix<NodeId> next_hop = Matrix<NodeId>::square(n, 0);
  algo = resolve_sp_algorithm(g, lengths, algo);
  const SpLengthCache* cache = maybe_length_cache(g, lengths, algo, ws);
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo, cache);
    if (ws.tree.order.size() != n) {
      throw std::invalid_argument("routing_matrix: graph is disconnected");
    }
    next_hop(s, s) = s;
    // Nodes settle in increasing-distance order, so a node's parent has
    // already had its next hop assigned.
    for (std::size_t i = 1; i < ws.tree.order.size(); ++i) {
      const NodeId t = ws.tree.order[i];
      const NodeId p = ws.tree.parent[t];
      next_hop(s, t) = (p == s) ? t : next_hop(s, p);
    }
  }
  return next_hop;
}

Matrix<NodeId> routing_matrix(const Topology& g,
                              const DistanceProvider& lengths) {
  RoutingWorkspace ws;
  return routing_matrix(g, lengths, ws);
}

std::vector<NodeId> route_path(const Matrix<NodeId>& next_hop, NodeId s,
                               NodeId t) {
  const std::size_t n = next_hop.rows();
  if (s >= n || t >= n) throw std::out_of_range("route_path: node out of range");
  std::vector<NodeId> path{s};
  NodeId v = s;
  while (v != t) {
    v = next_hop(v, t);
    path.push_back(v);
    if (path.size() > n) throw std::logic_error("route_path: routing loop");
  }
  return path;
}

}  // namespace cold
