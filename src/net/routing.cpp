#include "net/routing.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace cold {

void EdgeLoads::build(const Topology& g) {
  n = g.num_nodes();
  off.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    off[v + 1] = off[v] + g.neighbors(v).size();
  }
  adj.resize(off[n]);
  eid.resize(off[n]);
  std::uint32_t next = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t slot = off[u];
    for (const NodeId v : g.neighbors(u)) {
      adj[slot] = v;
      if (u < v) {
        // First (lexicographic) visit of the undirected edge: assign the
        // next id. Edges are therefore numbered in Topology::edges() order.
        eid[slot] = next++;
      } else {
        // Mirror slot: v < u, so v's row was fully numbered already.
        const std::size_t lo = off[v];
        const std::size_t hi = off[v + 1];
        const auto it =
            std::lower_bound(adj.begin() + static_cast<std::ptrdiff_t>(lo),
                             adj.begin() + static_cast<std::ptrdiff_t>(hi), u);
        assert(it != adj.begin() + static_cast<std::ptrdiff_t>(hi) && *it == u);
        eid[slot] = eid[static_cast<std::size_t>(it - adj.begin())];
      }
      ++slot;
    }
  }
  assert(next == g.num_edges());
  value.assign(next, 0.0);
}

void EdgeLoads::scatter(Matrix<double>& out) const {
  if (out.rows() != n || out.cols() != n) {
    out = Matrix<double>::square(n, 0.0);
  } else {
    out.fill(0.0);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t s = off[u]; s < off[u + 1]; ++s) {
      out(u, adj[s]) = value[eid[s]];
    }
  }
}

bool route_loads(const Topology& g, const Matrix<double>& lengths,
                 const Matrix<double>& traffic, Matrix<double>& loads,
                 RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  ws.aggregate.assign(n, 0.0);
  // Resolve the auto-selection (and dense-view availability) once per sweep.
  algo = resolve_sp_algorithm(g, algo);

  // Batched sweep: compute kSpSourceBlock trees in lockstep (shared
  // cache-resident frontier state), then accumulate them in increasing
  // source order — the accumulation order fixes the floating-point result,
  // so it must match the scalar per-source loop exactly.
  ws.block.resize(kSpSourceBlock);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(ws.block[b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

bool route_loads(const Topology& g, const Matrix<double>& lengths,
                 const Matrix<double>& traffic, EdgeLoads& loads,
                 RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads: traffic shape mismatch");
  }
  loads.build(g);
  ws.aggregate.assign(n, 0.0);
  algo = resolve_sp_algorithm(g, algo);
  ws.block.resize(kSpSourceBlock);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, ws.block.data(),
                             algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (ws.block[b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(ws.block[b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

void accumulate_tree_loads(const ShortestPathTree& tree,
                           const Matrix<double>& traffic, NodeId s,
                           Matrix<double>& loads,
                           std::vector<double>& aggregate) {
  // Push demands down the shortest-path tree: walking nodes in
  // decreasing-distance order, each node hands its subtree demand to its
  // parent edge. O(n) per source.
  const std::size_t n = tree.dist.size();
  aggregate.resize(n);
  for (NodeId t = 0; t < n; ++t) aggregate[t] = traffic(s, t);
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const NodeId p = tree.parent[t];
    loads(p, t) += aggregate[t];
    loads(t, p) += aggregate[t];
    aggregate[p] += aggregate[t];
  }
}

void accumulate_tree_loads(const ShortestPathTree& tree,
                           const Matrix<double>& traffic, NodeId s,
                           EdgeLoads& loads, std::vector<double>& aggregate) {
  // Same walk as the dense overload; the dense form's two symmetric writes
  // collapse into the edge's single accumulator, which receives the exact
  // same ordered sequence of adds — bit-identical per canonical cell.
  const std::size_t n = tree.dist.size();
  aggregate.resize(n);
  for (NodeId t = 0; t < n; ++t) aggregate[t] = traffic(s, t);
  for (std::size_t i = n; i-- > 1;) {  // skip the source (order[0])
    const NodeId t = tree.order[i];
    const NodeId p = tree.parent[t];
    loads.value[loads.index_of(p, t)] += aggregate[t];
    aggregate[p] += aggregate[t];
  }
}

bool route_loads_retained(const Topology& g, const Matrix<double>& lengths,
                          const Matrix<double>& traffic, Matrix<double>& loads,
                          std::vector<ShortestPathTree>& trees,
                          RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads_retained: traffic shape mismatch");
  }
  if (loads.rows() != n || loads.cols() != n) {
    loads = Matrix<double>::square(n, 0.0);
  } else {
    loads.fill(0.0);
  }
  trees.resize(n);
  algo = resolve_sp_algorithm(g, algo);
  // The retained trees live in `trees` directly, so the batch kernel can
  // run over whole blocks in place; accumulation stays in increasing
  // source order for bit-identical loads.
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(trees[base + b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

bool route_loads_retained(const Topology& g, const Matrix<double>& lengths,
                          const Matrix<double>& traffic, EdgeLoads& loads,
                          std::vector<ShortestPathTree>& trees,
                          RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (traffic.rows() != n || traffic.cols() != n) {
    throw std::invalid_argument("route_loads_retained: traffic shape mismatch");
  }
  loads.build(g);
  trees.resize(n);
  algo = resolve_sp_algorithm(g, algo);
  NodeId sources[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += kSpSourceBlock) {
    const std::size_t width =
        std::min<std::size_t>(kSpSourceBlock, n - base);
    for (std::size_t b = 0; b < width; ++b) sources[b] = base + b;
    shortest_path_tree_batch(g, lengths, sources, width, &trees[base], algo);
    for (std::size_t b = 0; b < width; ++b) {
      if (trees[base + b].order.size() != n) return false;  // disconnected
      accumulate_tree_loads(trees[base + b], traffic, sources[b], loads,
                            ws.aggregate);
    }
  }
  return true;
}

double total_demand_weighted_length(const Topology& g,
                                    const Matrix<double>& lengths,
                                    const Matrix<double>& traffic,
                                    RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  algo = resolve_sp_algorithm(g, algo);
  double total = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo);
    if (ws.tree.order.size() != n) {
      return std::numeric_limits<double>::infinity();
    }
    for (NodeId t = 0; t < n; ++t) total += traffic(s, t) * ws.tree.dist[t];
  }
  return total;
}

double total_demand_weighted_length(const Topology& g,
                                    const Matrix<double>& lengths,
                                    const Matrix<double>& traffic) {
  RoutingWorkspace ws;
  return total_demand_weighted_length(g, lengths, traffic, ws);
}

Matrix<NodeId> routing_matrix(const Topology& g, const Matrix<double>& lengths,
                              RoutingWorkspace& ws, SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  Matrix<NodeId> next_hop = Matrix<NodeId>::square(n, 0);
  algo = resolve_sp_algorithm(g, algo);
  for (NodeId s = 0; s < n; ++s) {
    shortest_path_tree(g, lengths, s, ws.tree, algo);
    if (ws.tree.order.size() != n) {
      throw std::invalid_argument("routing_matrix: graph is disconnected");
    }
    next_hop(s, s) = s;
    // Nodes settle in increasing-distance order, so a node's parent has
    // already had its next hop assigned.
    for (std::size_t i = 1; i < ws.tree.order.size(); ++i) {
      const NodeId t = ws.tree.order[i];
      const NodeId p = ws.tree.parent[t];
      next_hop(s, t) = (p == s) ? t : next_hop(s, p);
    }
  }
  return next_hop;
}

Matrix<NodeId> routing_matrix(const Topology& g,
                              const Matrix<double>& lengths) {
  RoutingWorkspace ws;
  return routing_matrix(g, lengths, ws);
}

std::vector<NodeId> route_path(const Matrix<NodeId>& next_hop, NodeId s,
                               NodeId t) {
  const std::size_t n = next_hop.rows();
  if (s >= n || t >= n) throw std::out_of_range("route_path: node out of range");
  std::vector<NodeId> path{s};
  NodeId v = s;
  while (v != t) {
    v = next_hop(v, t);
    path.push_back(v);
    if (path.size() > n) throw std::logic_error("route_path: routing loop");
  }
  return path;
}

}  // namespace cold
