// Shortest-path routing and link-load computation (paper §3.2.1).
//
// COLD routes every demand on its shortest physical path; the bandwidth a
// link must carry (w_i) is the sum of all demands routed across it. This is
// the dominant cost of evaluating a candidate topology, so the hot entry
// points reuse caller-provided workspace (RoutingWorkspace) and do no
// allocation in the steady state, and every n-source sweep takes an
// SpAlgorithm: dense scan, sparse heap Dijkstra, or automatic selection by
// density (the solvers are bit-identical — see graph/shortest_paths.h).
//
// Currencies: lengths arrive as a DistanceProvider (dense matrix or
// matrix-free coordinates — bit-identical either way) and traffic as a
// CompressedTraffic CSR (a dense TrafficMatrix converts implicitly). Loads
// accumulate into EdgeLoads, the O(n + m) sparse form. The historical
// Matrix<double>-shaped loads overloads are DEPRECATED (renamed *_dense,
// linted by tools/check_deprecated_api.py) and kept only as compat shims.
//
// Direction convention: the traffic matrix is interpreted as ordered-pair
// demands; an undirected link's load is the sum over both directions
// traversing it. With the (symmetric) gravity matrices used by COLD this
// simply counts each unordered demand twice, uniformly for all topologies,
// so relative costs are unaffected.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/shortest_paths.h"
#include "graph/topology.h"
#include "traffic/gravity.h"
#include "util/matrix.h"

namespace cold {

/// Sparse per-link load accumulator — the O(n + m) replacement for the n²
/// loads matrix. The skeleton is a CSR mirror of the topology's sorted
/// adjacency (off/adj) plus a parallel eid array mapping each directed slot
/// to its undirected edge's index in lexicographic (u < v, then v) edge
/// order; value[] holds one double accumulator per undirected edge, in that
/// same lexicographic order (value[k] is the k-th edge of Topology::edges()).
///
/// Bit-identity with the dense matrix: dense accumulation adds the same
/// addend to both (p,t) and (t,p), and every consumer reads only the
/// canonical (min,max) cell — so folding both writes into ONE accumulator
/// that receives the identical ordered sequence of adds yields the same
/// doubles (see DESIGN.md §4.7).
struct EdgeLoads {
  std::size_t n = 0;               ///< node count of the built topology
  std::vector<std::size_t> off;    ///< n+1 row offsets into adj/eid
  std::vector<NodeId> adj;         ///< 2m neighbours, each row sorted
  std::vector<std::uint32_t> eid;  ///< directed slot -> undirected edge index
  std::vector<double> value;       ///< m loads, lexicographic edge order

  /// Rebuilds the CSR skeleton from `g` and zeroes every accumulator.
  /// O(n + m log Δ); steady state reuses capacity across topologies of the
  /// same size.
  void build(const Topology& g);

  /// Zeroes the accumulators, keeping the skeleton.
  void reset() { std::fill(value.begin(), value.end(), 0.0); }

  /// Undirected edge index of {u, v} (its rank in Topology::edges()).
  /// Precondition: the edge exists in the topology the skeleton was built
  /// from — checked only by assert, this is the routing hot path.
  std::size_t index_of(NodeId u, NodeId v) const {
    const std::size_t lo = off[u];
    const std::size_t hi = off[u + 1];
    const auto it = std::lower_bound(adj.begin() + static_cast<std::ptrdiff_t>(lo),
                                     adj.begin() + static_cast<std::ptrdiff_t>(hi), v);
    return eid[static_cast<std::size_t>(it - adj.begin())];
  }

  /// Load on link {u, v}.
  double at(NodeId u, NodeId v) const { return value[index_of(u, v)]; }

  std::size_t num_edges() const { return value.size(); }

  /// Expands into a symmetric dense matrix (compat shim for callers that
  /// still want Matrix-shaped loads; resizes/zeroes `out`).
  void scatter(Matrix<double>& out) const;
};

/// Rough resident size of one ShortestPathTree at n nodes (labels, order,
/// solver scratch). Used to size block scratch and the delta engine's
/// retained-state budget by bytes.
inline constexpr std::size_t sp_tree_bytes(std::size_t n) {
  // dist 8 + parent 8 + order 8 + frontier_key 8 + hops 4 + settled 1,
  // per node, plus heap/block_min slack.
  return n * 40;
}

/// Reusable scratch space for routing computations. Byte-bounded: the
/// source-block scratch holds at most max_block_bytes of trees (never
/// fewer than one), so per-worker routing memory stays bounded as n grows
/// instead of scaling with a fixed tree count.
struct RoutingWorkspace {
  /// Default block budget: holds the full kSpSourceBlock at n up to ~26k,
  /// degrading the batch width (never the results — the batch contract is
  /// bit-identity at any width) beyond that.
  static constexpr std::size_t kDefaultMaxBlockBytes = std::size_t{4} << 20;

  ShortestPathTree tree;
  std::vector<double> aggregate;  ///< per-node downstream demand sums
  /// Source-block scratch for the batched sweeps (at most kSpSourceBlock
  /// trees, byte-capped); lets route_loads run shortest_path_tree_batch
  /// without retaining all n trees. Loads are still accumulated in
  /// increasing-source order.
  std::vector<ShortestPathTree> block;
  std::size_t max_block_bytes = kDefaultMaxBlockBytes;
  /// Per-sweep edge-length cache (O(n + m) doubles), built by the sweep
  /// entry points when the provider is matrix-free and the sparse solver
  /// runs, so relaxations read one slot instead of recomputing a hypot per
  /// scanned edge. Same doubles — results stay bit-identical.
  SpLengthCache length_cache;
  /// Multipath scratch (net/multipath.h): the per-source shortest-path DAG
  /// and the per-branch share buffer. Unused by the single-path sweeps.
  SpDag dag;
  std::vector<double> split;

  /// Effective batch width at n nodes: kSpSourceBlock trees if they fit the
  /// byte budget, else as many as fit (at least 1).
  std::size_t block_width(std::size_t n) const {
    const std::size_t per_tree = sp_tree_bytes(n) > 0 ? sp_tree_bytes(n) : 1;
    const std::size_t fit = max_block_bytes / per_tree;
    return std::max<std::size_t>(1, std::min(kSpSourceBlock, fit));
  }
};

/// Computes per-link loads under shortest-path routing of `traffic` over
/// the edges of `g` (weighted by `lengths`), accumulating into an EdgeLoads
/// (rebuilt from `g` here) — O(n + m) load state. Entry {u,v} = total
/// demand crossing the link in either direction. Returns false if `g` is
/// disconnected (some demand is unroutable; loads are then partial and
/// must not be used).
///
/// Zero demands are skipped exactly (CSR row scatter); identical ordered
/// adds per accumulator make the result bit-identical to the historical
/// dense-matrix form's canonical cells.
///
/// Complexity: one shortest-path tree plus an O(n) aggregation per source —
/// O(n^3) with the dense solver, O(n (n+m) log n) with the sparse one.
bool route_loads(const Topology& g, const DistanceProvider& lengths,
                 const CompressedTraffic& traffic, EdgeLoads& loads,
                 RoutingWorkspace& ws, SpAlgorithm algo = SpAlgorithm::kAuto);

/// DEPRECATED: dense Matrix-shaped loads. Use the EdgeLoads overload of
/// route_loads; scatter() if a dense view is really needed. Linted by
/// tools/check_deprecated_api.py.
bool route_loads_dense(  // deprecated-api-allowed (declaration)
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, Matrix<double>& loads,
    RoutingWorkspace& ws, SpAlgorithm algo = SpAlgorithm::kAuto);

/// The per-source half of route_loads: pushes row `s` of `traffic` down
/// `tree` (the shortest-path tree rooted at s, which must span all n nodes),
/// accumulating into `loads` (must have been built from the routed
/// topology). Exposed so the delta evaluation engine can aggregate
/// incrementally-updated trees through the *same* code path — identical
/// operation order, so loads are bit-identical to a full route_loads sweep.
/// `aggregate` is caller scratch (resized here).
void accumulate_tree_loads(const ShortestPathTree& tree,
                           const CompressedTraffic& traffic, NodeId s,
                           EdgeLoads& loads, std::vector<double>& aggregate);

/// DEPRECATED: dense Matrix-shaped loads variant of the per-source
/// aggregation. Use the EdgeLoads overload of accumulate_tree_loads.
void accumulate_tree_loads_dense(  // deprecated-api-allowed (declaration)
    const ShortestPathTree& tree, const CompressedTraffic& traffic, NodeId s,
    Matrix<double>& loads, std::vector<double>& aggregate);

/// route_loads, but each source's tree is computed into (and left in)
/// `trees[s]` instead of transient workspace — the delta engine retains them
/// as parent state for incremental re-routing. `trees` is resized to n.
/// Same return contract as route_loads: false means disconnected, with
/// loads and trees partial.
bool route_loads_retained(const Topology& g, const DistanceProvider& lengths,
                          const CompressedTraffic& traffic, EdgeLoads& loads,
                          std::vector<ShortestPathTree>& trees,
                          RoutingWorkspace& ws,
                          SpAlgorithm algo = SpAlgorithm::kAuto);

/// DEPRECATED: dense Matrix-shaped loads variant of route_loads_retained.
/// Use the EdgeLoads overload.
bool route_loads_retained_dense(  // deprecated-api-allowed (declaration)
    const Topology& g, const DistanceProvider& lengths,
    const CompressedTraffic& traffic, Matrix<double>& loads,
    std::vector<ShortestPathTree>& trees, RoutingWorkspace& ws,
    SpAlgorithm algo = SpAlgorithm::kAuto);

/// Sum over routes of demand * route physical length (the paper's
/// sum_r t_r L_r from eq. (1)). Returns infinity if disconnected.
/// The workspace overload is allocation-free in the steady state; the
/// 3-argument form is a thin allocating wrapper around it.
double total_demand_weighted_length(const Topology& g,
                                    const DistanceProvider& lengths,
                                    const CompressedTraffic& traffic,
                                    RoutingWorkspace& ws,
                                    SpAlgorithm algo = SpAlgorithm::kAuto);
double total_demand_weighted_length(const Topology& g,
                                    const DistanceProvider& lengths,
                                    const CompressedTraffic& traffic);

/// Full next-hop routing matrix: next_hop(s, t) is the neighbour of s on the
/// chosen shortest path toward t; next_hop(s, s) == s. Throws if `g` is
/// disconnected. Same wrapper arrangement as total_demand_weighted_length.
/// O(n^2) output — callers synthesizing at scale should skip it (see
/// NetworkBuildOptions::materialize_routing).
Matrix<NodeId> routing_matrix(const Topology& g,
                              const DistanceProvider& lengths,
                              RoutingWorkspace& ws,
                              SpAlgorithm algo = SpAlgorithm::kAuto);
Matrix<NodeId> routing_matrix(const Topology& g,
                              const DistanceProvider& lengths);

/// Extracts the node sequence s -> t implied by a next-hop matrix.
std::vector<NodeId> route_path(const Matrix<NodeId>& next_hop, NodeId s,
                               NodeId t);

}  // namespace cold
