// Router-level expansion by templated PoP design (paper §1, §8; refs [2-4,6]).
//
// COLD's layered philosophy: optimize the PoP level, then instantiate each
// PoP's internals from a small design template — "the internal design of
// PoPs is almost completely determined by simple templates" (§3). This
// module implements the template step the paper defers to later work:
//
//   * every PoP gets 1 core router (leaf PoPs) or 2 (core PoPs, for
//     redundancy),
//   * access routers are added per PoP to terminate local demand, one per
//     `access_router_capacity` of offered traffic,
//   * intra-PoP wiring is a dual-star: each access router homes to every
//     core router in its PoP; co-located core routers interconnect,
//   * each inter-PoP link becomes a router-level link between core routers,
//     alternating attachment points to spread load.
#pragma once

#include <string>
#include <vector>

#include "geom/point.h"
#include "net/network.h"

namespace cold {

struct ExpansionConfig {
  /// Offered traffic one access router can terminate (> 0).
  double access_router_capacity = 100.0;
  /// Core routers in a core (degree > 1) PoP.
  int core_routers_per_hub = 2;
  /// Cap on access routers per PoP (guards degenerate traffic inputs; 0 = no cap).
  int max_access_routers = 64;
};

enum class RouterRole { kCore, kAccess };

struct Router {
  std::size_t pop = 0;       ///< owning PoP
  RouterRole role = RouterRole::kCore;
  Point location;            ///< jittered around the PoP location
  std::string name;          ///< e.g. "pop3-core0", "pop3-acc2"
};

struct RouterLink {
  std::size_t a = 0;         ///< router indices
  std::size_t b = 0;
  double capacity = 0.0;
  bool inter_pop = false;    ///< true if it realizes a PoP-level link
};

struct RouterNetwork {
  std::vector<Router> routers;
  std::vector<RouterLink> links;
  Topology graph;            ///< router-level adjacency

  std::size_t num_routers() const { return routers.size(); }
  /// Routers belonging to one PoP.
  std::vector<std::size_t> routers_of_pop(std::size_t pop) const;
};

/// Expands a PoP-level network into a router-level network.
RouterNetwork expand_to_router_level(const Network& net,
                                     const ExpansionConfig& config = {});

/// Sanity checks: connected, every inter-PoP link realized, intra-PoP
/// dual-star present. Throws std::logic_error on violation.
void validate_router_network(const RouterNetwork& rn, const Network& net);

}  // namespace cold
