// Generalized graph products for structured network design (Parsonage et
// al. [6, 25]; the machinery the paper names for router-level generation:
// "the PoP-level design rules can be exploited to perform router-level
// network generation ... which can be expressed through graph products").
//
// The classical products combine a "backbone" graph G with a "template"
// graph H into a graph on V(G) x V(H):
//
//   Cartesian   (g,h)~(g',h')  iff  (g=g' and h~h') or (h=h' and g~g')
//   Tensor      (g,h)~(g',h')  iff  g~g' and h~h'
//   Strong      Cartesian ∪ Tensor
//   Lexicographic (g,h)~(g',h') iff g~g' or (g=g' and h~h')
//
// The *generalized* product of [6] drops the uniform template: each
// backbone node carries its own template graph, and a connection rule
// decides which template nodes terminate inter-backbone links. That is
// exactly the PoP -> router expansion: backbone = PoP graph, per-PoP
// template = internal router design, rule = "inter-PoP links land on
// gateway routers". expand_to_router_level() is one instance; this header
// exposes the general machinery.
#pragma once

#include <functional>
#include <vector>

#include "graph/topology.h"

namespace cold {

enum class ProductKind { kCartesian, kTensor, kStrong, kLexicographic };

/// Classical product of G and H on V(G) x V(H); node (g, h) has index
/// g * |V(H)| + h. Throws if either factor is empty.
Topology graph_product(const Topology& g, const Topology& h,
                       ProductKind kind);

/// Index helper for product graphs.
inline NodeId product_node(NodeId g, NodeId h, std::size_t h_size) {
  return g * h_size + h;
}

/// Generalized product: per-backbone-node templates plus a gateway rule.
struct GeneralizedProductSpec {
  /// templates[v] is the internal graph of backbone node v (>= 1 node each).
  std::vector<Topology> templates;
  /// gateway(v, e) returns the local template-node indices of backbone node
  /// v that terminate backbone edge e (must be non-empty, indices valid).
  std::function<std::vector<NodeId>(NodeId v, const Edge& e)> gateway;
};

struct GeneralizedProductResult {
  Topology graph;
  /// Maps each product node to (backbone node, local template index).
  std::vector<std::pair<NodeId, NodeId>> origin;
  /// First product index of each backbone node's block.
  std::vector<NodeId> block_start;
};

/// Builds the generalized product of `backbone` with the given spec: each
/// backbone node is replaced by its template; every backbone edge becomes
/// the complete bipartite join of the two endpoints' gateway sets. Throws
/// std::invalid_argument on malformed specs.
GeneralizedProductResult generalized_product(const Topology& backbone,
                                             const GeneralizedProductSpec& spec);

}  // namespace cold
