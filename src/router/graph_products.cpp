#include "router/graph_products.h"

#include <stdexcept>

namespace cold {

Topology graph_product(const Topology& g, const Topology& h,
                       ProductKind kind) {
  const std::size_t ng = g.num_nodes();
  const std::size_t nh = h.num_nodes();
  if (ng == 0 || nh == 0) {
    throw std::invalid_argument("graph_product: factors must be non-empty");
  }
  Topology out(ng * nh);
  for (NodeId g1 = 0; g1 < ng; ++g1) {
    for (NodeId h1 = 0; h1 < nh; ++h1) {
      const NodeId a = product_node(g1, h1, nh);
      for (NodeId g2 = 0; g2 < ng; ++g2) {
        for (NodeId h2 = 0; h2 < nh; ++h2) {
          const NodeId b = product_node(g2, h2, nh);
          if (b <= a) continue;
          const bool g_adj = g.has_edge(g1, g2);
          const bool h_adj = h.has_edge(h1, h2);
          const bool g_eq = g1 == g2;
          const bool h_eq = h1 == h2;
          bool link = false;
          switch (kind) {
            case ProductKind::kCartesian:
              link = (g_eq && h_adj) || (h_eq && g_adj);
              break;
            case ProductKind::kTensor:
              link = g_adj && h_adj;
              break;
            case ProductKind::kStrong:
              link = (g_eq && h_adj) || (h_eq && g_adj) || (g_adj && h_adj);
              break;
            case ProductKind::kLexicographic:
              link = g_adj || (g_eq && h_adj);
              break;
          }
          if (link) out.add_edge(a, b);
        }
      }
    }
  }
  return out;
}

GeneralizedProductResult generalized_product(
    const Topology& backbone, const GeneralizedProductSpec& spec) {
  const std::size_t n = backbone.num_nodes();
  if (spec.templates.size() != n) {
    throw std::invalid_argument(
        "generalized_product: one template per backbone node required");
  }
  if (!spec.gateway) {
    throw std::invalid_argument("generalized_product: gateway rule required");
  }
  GeneralizedProductResult result;
  result.block_start.resize(n);
  std::size_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (spec.templates[v].num_nodes() == 0) {
      throw std::invalid_argument(
          "generalized_product: templates must be non-empty");
    }
    result.block_start[v] = total;
    total += spec.templates[v].num_nodes();
  }
  result.graph = Topology(total);
  result.origin.reserve(total);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId t = 0; t < spec.templates[v].num_nodes(); ++t) {
      result.origin.emplace_back(v, t);
    }
    // Intra-block template edges.
    for (const Edge& e : spec.templates[v].edges()) {
      result.graph.add_edge(result.block_start[v] + e.u,
                            result.block_start[v] + e.v);
    }
  }
  // Backbone edges: join the gateway sets.
  for (const Edge& e : backbone.edges()) {
    const std::vector<NodeId> gu = spec.gateway(e.u, e);
    const std::vector<NodeId> gv = spec.gateway(e.v, e);
    if (gu.empty() || gv.empty()) {
      throw std::invalid_argument(
          "generalized_product: gateway sets must be non-empty");
    }
    for (NodeId a : gu) {
      if (a >= spec.templates[e.u].num_nodes()) {
        throw std::invalid_argument("generalized_product: bad gateway index");
      }
      for (NodeId b : gv) {
        if (b >= spec.templates[e.v].num_nodes()) {
          throw std::invalid_argument(
              "generalized_product: bad gateway index");
        }
        result.graph.add_edge(result.block_start[e.u] + a,
                              result.block_start[e.v] + b);
      }
    }
  }
  return result;
}

}  // namespace cold
