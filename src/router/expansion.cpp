#include "router/expansion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {

std::vector<std::size_t> RouterNetwork::routers_of_pop(std::size_t pop) const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < routers.size(); ++r) {
    if (routers[r].pop == pop) out.push_back(r);
  }
  return out;
}

RouterNetwork expand_to_router_level(const Network& net,
                                     const ExpansionConfig& config) {
  if (config.access_router_capacity <= 0) {
    throw std::invalid_argument(
        "expand_to_router_level: access_router_capacity must be > 0");
  }
  if (config.core_routers_per_hub < 1) {
    throw std::invalid_argument(
        "expand_to_router_level: need >= 1 core router per hub");
  }
  const std::size_t n = net.num_pops();
  const std::vector<double> offered = traffic_per_pop(net.traffic);

  RouterNetwork rn;
  std::vector<std::vector<std::size_t>> cores(n);  // core router ids per PoP

  // 1. Instantiate routers per PoP from the template.
  for (std::size_t p = 0; p < n; ++p) {
    const bool is_core_pop = net.topology.degree(p) > 1;
    const int num_core = is_core_pop ? config.core_routers_per_hub : 1;
    for (int c = 0; c < num_core; ++c) {
      Router r;
      r.pop = p;
      r.role = RouterRole::kCore;
      // Small deterministic offset so router-level drawings don't overlap.
      r.location = Point{net.locations[p].x + 0.002 * c,
                         net.locations[p].y + 0.002 * c};
      r.name = "pop" + std::to_string(p) + "-core" + std::to_string(c);
      cores[p].push_back(rn.routers.size());
      rn.routers.push_back(std::move(r));
    }
    int num_access = static_cast<int>(
        std::ceil(offered[p] / config.access_router_capacity));
    num_access = std::max(1, num_access);
    if (config.max_access_routers > 0) {
      num_access = std::min(num_access, config.max_access_routers);
    }
    for (int a = 0; a < num_access; ++a) {
      Router r;
      r.pop = p;
      r.role = RouterRole::kAccess;
      r.location = Point{net.locations[p].x + 0.001 * (a + 1),
                         net.locations[p].y - 0.001 * (a + 1)};
      r.name = "pop" + std::to_string(p) + "-acc" + std::to_string(a);
      rn.routers.push_back(std::move(r));
    }
  }

  rn.graph = Topology(rn.routers.size());
  auto add_link = [&](std::size_t a, std::size_t b, double capacity,
                      bool inter_pop) {
    if (rn.graph.add_edge(a, b)) {
      rn.links.push_back(RouterLink{a, b, capacity, inter_pop});
    }
  };

  // 2. Intra-PoP template: core mesh + dual-star from access routers.
  for (std::size_t p = 0; p < n; ++p) {
    const auto& core_ids = cores[p];
    for (std::size_t i = 0; i < core_ids.size(); ++i) {
      for (std::size_t j = i + 1; j < core_ids.size(); ++j) {
        // Intra-PoP links are cheap (paper §3) — size generously at the
        // PoP's total offered traffic.
        add_link(core_ids[i], core_ids[j], offered[p], /*inter_pop=*/false);
      }
    }
    for (std::size_t r = 0; r < rn.routers.size(); ++r) {
      if (rn.routers[r].pop != p || rn.routers[r].role != RouterRole::kAccess) {
        continue;
      }
      for (std::size_t c : core_ids) {
        add_link(r, c, config.access_router_capacity, /*inter_pop=*/false);
      }
    }
  }

  // 3. Inter-PoP links attach to core routers, alternating attachment
  //    points so parallel links spread across the redundant cores.
  std::vector<std::size_t> next_attach(n, 0);
  for (const Link& l : net.links) {
    const auto& cu = cores[l.edge.u];
    const auto& cv = cores[l.edge.v];
    const std::size_t a = cu[next_attach[l.edge.u] % cu.size()];
    const std::size_t b = cv[next_attach[l.edge.v] % cv.size()];
    ++next_attach[l.edge.u];
    ++next_attach[l.edge.v];
    add_link(a, b, l.capacity, /*inter_pop=*/true);
  }
  return rn;
}

void validate_router_network(const RouterNetwork& rn, const Network& net) {
  if (!is_connected(rn.graph)) {
    throw std::logic_error("router network: disconnected");
  }
  // Every PoP-level link must be realized by >= 1 inter-PoP router link.
  for (const Link& l : net.links) {
    bool found = false;
    for (const RouterLink& rl : rn.links) {
      if (!rl.inter_pop) continue;
      const std::size_t pa = rn.routers[rl.a].pop;
      const std::size_t pb = rn.routers[rl.b].pop;
      if ((pa == l.edge.u && pb == l.edge.v) ||
          (pa == l.edge.v && pb == l.edge.u)) {
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::logic_error("router network: PoP link not realized");
    }
  }
  // Dual-star: every access router connects to every co-located core router.
  for (std::size_t r = 0; r < rn.routers.size(); ++r) {
    if (rn.routers[r].role != RouterRole::kAccess) continue;
    for (std::size_t c = 0; c < rn.routers.size(); ++c) {
      if (rn.routers[c].role == RouterRole::kCore &&
          rn.routers[c].pop == rn.routers[r].pop &&
          !rn.graph.has_edge(r, c)) {
        throw std::logic_error("router network: broken dual-star");
      }
    }
  }
}

}  // namespace cold
