// Multi-AS synthesis — the extension the paper sketches in §2: "Imagine the
// PoPs are in fact cities, in which different networks may have presence.
// PoP interconnects in same cities could then be assigned a cost, and we
// could run the optimization with respect to this additional cost."
//
// Model: a shared set of city locations; each AS has presence in a random
// subset of cities and synthesizes its own intra-AS PoP network with COLD
// over its cities. For every AS pair, interconnects are placed in shared
// cities by the same cost logic COLD uses for hubs: each interconnect costs
// k4; inter-AS demand is hauled from each city to its nearest peering city,
// paying the bandwidth-distance cost k2. Peering points are added greedily
// while they reduce total cost.
#pragma once

#include <vector>

#include "core/synthesizer.h"
#include "net/network.h"

namespace cold {

struct MultiAsConfig {
  std::size_t num_cities = 40;
  std::size_t num_ases = 3;
  /// Probability an AS is present in a city (presence is re-drawn until the
  /// AS has at least `min_presence` cities).
  double presence_probability = 0.5;
  std::size_t min_presence = 4;
  /// Intra-AS synthesis settings (costs + GA).
  CostParams costs;
  GaConfig ga;
  /// Interconnect existence cost (the paper's "cost assigned to PoP
  /// interconnects in the same city").
  double interconnect_cost = 50.0;
  /// Gravity scale for both intra-AS matrices and inter-AS demand; matches
  /// the calibrated default of ContextConfig (see core/context.h).
  double gravity_scale = 10.0;
  /// Fraction of the gravity product between two ASes' total populations
  /// that crosses between them.
  double inter_as_traffic_fraction = 0.001;
};

/// One AS's synthesized network plus its city mapping.
struct AsNetwork {
  std::size_t as_id = 0;
  std::vector<std::size_t> cities;  ///< local PoP index -> city index
  Network network;
};

/// An interconnect between two ASes in a shared city.
struct Interconnect {
  std::size_t as_a = 0;
  std::size_t as_b = 0;
  std::size_t city = 0;
  double demand = 0.0;  ///< inter-AS demand routed through this point
};

struct MultiAsResult {
  std::vector<Point> cities;             ///< shared city coordinates
  std::vector<AsNetwork> ases;
  std::vector<Interconnect> interconnects;
  /// AS pairs with no shared city (cannot peer directly).
  std::vector<std::pair<std::size_t, std::size_t>> unpeered;
};

/// Synthesizes a multi-AS topology. Deterministic given `seed`. Throws
/// std::invalid_argument on inconsistent configuration (e.g. min_presence
/// exceeding the city count).
MultiAsResult synthesize_multi_as(const MultiAsConfig& config,
                                  std::uint64_t seed);

/// Greedy peering-point selection for one AS pair, exposed for testing:
/// given candidate cities (indices into `cities`), the per-city demand each
/// side originates, and the interconnect cost, returns the chosen subset.
/// Demand from each city is hauled to its nearest chosen peering city at
/// cost k2_per_unit_distance per unit demand per unit distance.
std::vector<std::size_t> choose_peering_cities(
    const std::vector<Point>& cities, const std::vector<std::size_t>& shared,
    const std::vector<std::pair<std::size_t, double>>& demand_by_city,
    double interconnect_cost, double k2_per_unit_distance);

}  // namespace cold
