#include "multias/multias.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "geom/point_process.h"
#include "traffic/gravity.h"

namespace cold {

namespace {

// Haul cost of serving all demand points from the chosen peering set.
double haul_cost(const std::vector<Point>& cities,
                 const std::vector<std::size_t>& chosen,
                 const std::vector<std::pair<std::size_t, double>>& demand,
                 double k2) {
  double total = 0.0;
  for (const auto& [city, volume] : demand) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t peer : chosen) {
      best = std::min(best, distance(cities[city], cities[peer]));
    }
    total += k2 * volume * best;
  }
  return total;
}

}  // namespace

std::vector<std::size_t> choose_peering_cities(
    const std::vector<Point>& cities, const std::vector<std::size_t>& shared,
    const std::vector<std::pair<std::size_t, double>>& demand_by_city,
    double interconnect_cost, double k2_per_unit_distance) {
  if (shared.empty()) return {};
  std::vector<std::size_t> chosen;
  double current = std::numeric_limits<double>::infinity();
  // Greedy: repeatedly add the candidate that lowers (haul + k4 * |P|).
  while (chosen.size() < shared.size()) {
    std::size_t best_city = cities.size();
    double best_cost = current;
    for (std::size_t cand : shared) {
      if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) {
        continue;
      }
      chosen.push_back(cand);
      const double cost =
          haul_cost(cities, chosen, demand_by_city, k2_per_unit_distance) +
          interconnect_cost * static_cast<double>(chosen.size());
      chosen.pop_back();
      if (cost < best_cost) {
        best_cost = cost;
        best_city = cand;
      }
    }
    if (best_city == cities.size()) break;  // no improvement
    chosen.push_back(best_city);
    current = best_cost;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

MultiAsResult synthesize_multi_as(const MultiAsConfig& config,
                                  std::uint64_t seed) {
  if (config.num_ases < 2) {
    throw std::invalid_argument("synthesize_multi_as: need >= 2 ASes");
  }
  if (config.min_presence < 2 || config.min_presence > config.num_cities) {
    throw std::invalid_argument(
        "synthesize_multi_as: need 2 <= min_presence <= num_cities");
  }
  if (config.presence_probability <= 0.0 || config.presence_probability > 1.0) {
    throw std::invalid_argument(
        "synthesize_multi_as: presence_probability in (0, 1]");
  }
  config.costs.validate();

  MultiAsResult result;
  Rng rng(seed, /*stream=*/0xa5);

  // Shared cities on the unit square.
  const UniformProcess uniform;
  result.cities = uniform.sample(config.num_cities, Rectangle(), rng);

  // Per-AS presence and intra-AS synthesis.
  std::vector<double> as_total_population(config.num_ases, 0.0);
  for (std::size_t as = 0; as < config.num_ases; ++as) {
    AsNetwork asn;
    asn.as_id = as;
    // Draw presence until the AS has enough cities (deterministic given rng).
    for (int attempt = 0; attempt < 1000 && asn.cities.size() < config.min_presence;
         ++attempt) {
      asn.cities.clear();
      for (std::size_t c = 0; c < config.num_cities; ++c) {
        if (rng.bernoulli(config.presence_probability)) asn.cities.push_back(c);
      }
    }
    if (asn.cities.size() < config.min_presence) {
      throw std::logic_error("synthesize_multi_as: presence draw failed");
    }

    // Context over the AS's cities: fixed locations, fresh populations.
    std::vector<Point> locations;
    for (std::size_t c : asn.cities) locations.push_back(result.cities[c]);
    const ExponentialPopulation pop_model(30.0);
    std::vector<double> populations = pop_model.sample(asn.cities.size(), rng);
    for (double p : populations) as_total_population[as] += p;
    GravityOptions gravity;
    gravity.scale = config.gravity_scale;
    const Context ctx =
        make_context(locations, populations, gravity_matrix(populations, gravity));

    SynthesisConfig scfg;
    scfg.costs = config.costs;
    scfg.ga = config.ga;
    const Synthesizer synth(scfg);
    asn.network = synth.synthesize_for_context(ctx, rng.next_u64()).network;
    result.ases.push_back(std::move(asn));
  }

  // Interconnects per AS pair.
  for (std::size_t a = 0; a < config.num_ases; ++a) {
    for (std::size_t b = a + 1; b < config.num_ases; ++b) {
      std::vector<std::size_t> shared;
      for (std::size_t ca : result.ases[a].cities) {
        const auto& cb = result.ases[b].cities;
        if (std::find(cb.begin(), cb.end(), ca) != cb.end()) {
          shared.push_back(ca);
        }
      }
      if (shared.empty()) {
        result.unpeered.emplace_back(a, b);
        continue;
      }
      // Inter-AS demand: a fraction of the gravity product between the two
      // ASes' total populations (same units as the intra-AS matrices),
      // spread over both ASes' cities in proportion to their populations.
      const double pair_demand = config.inter_as_traffic_fraction *
                                 config.gravity_scale *
                                 as_total_population[a] *
                                 as_total_population[b];
      std::vector<std::pair<std::size_t, double>> demand_by_city;
      for (const AsNetwork* asn : {&result.ases[a], &result.ases[b]}) {
        double total_pop = 0.0;
        for (double p : asn->network.populations) total_pop += p;
        for (std::size_t i = 0; i < asn->cities.size(); ++i) {
          demand_by_city.emplace_back(
              asn->cities[i],
              pair_demand * asn->network.populations[i] / total_pop);
        }
      }
      const auto peers = choose_peering_cities(
          result.cities, shared, demand_by_city, config.interconnect_cost,
          config.costs.k2);
      for (std::size_t city : peers) {
        // Demand attributed to this interconnect: everything whose nearest
        // peer is this city.
        double volume = 0.0;
        for (const auto& [c, v] : demand_by_city) {
          std::size_t nearest = peers.front();
          for (std::size_t p : peers) {
            if (distance(result.cities[c], result.cities[p]) <
                distance(result.cities[c], result.cities[nearest])) {
              nearest = p;
            }
          }
          if (nearest == city) volume += v;
        }
        result.interconnects.push_back(Interconnect{a, b, city, volume});
      }
    }
  }
  return result;
}

}  // namespace cold
