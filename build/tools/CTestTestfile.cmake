# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synth_json "/root/repo/build/tools/cold" "synth" "--pops" "8" "--population" "12" "--generations" "8" "--seed" "1" "--format" "json" "--out" "cli_net.json")
set_tests_properties(cli_synth_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_dot "/root/repo/build/tools/cold" "synth" "--pops" "6" "--population" "12" "--generations" "6" "--format" "dot")
set_tests_properties(cli_synth_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ensemble "/root/repo/build/tools/cold" "ensemble" "--count" "3" "--pops" "6" "--population" "12" "--generations" "6")
set_tests_properties(cli_ensemble PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_grow "/root/repo/build/tools/cold" "grow" "--in" "cli_net.json" "--new-pops" "2" "--population" "12" "--generations" "8" "--out" "cli_grown.json")
set_tests_properties(cli_grow PROPERTIES  DEPENDS "cli_synth_json" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/cold" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_input "/root/repo/build/tools/cold" "metrics")
set_tests_properties(cli_missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
