file(REMOVE_RECURSE
  "CMakeFiles/cold_cli.dir/cold_cli.cpp.o"
  "CMakeFiles/cold_cli.dir/cold_cli.cpp.o.d"
  "cold"
  "cold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
