# Empty dependencies file for cold_cli.
# This may be replaced when dependencies are built.
