file(REMOVE_RECURSE
  "CMakeFiles/fig8a_zoo_cvnd.dir/bench_common.cpp.o"
  "CMakeFiles/fig8a_zoo_cvnd.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig8a_zoo_cvnd.dir/fig8a_zoo_cvnd.cpp.o"
  "CMakeFiles/fig8a_zoo_cvnd.dir/fig8a_zoo_cvnd.cpp.o.d"
  "fig8a_zoo_cvnd"
  "fig8a_zoo_cvnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_zoo_cvnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
