# Empty compiler generated dependencies file for fig8a_zoo_cvnd.
# This may be replaced when dependencies are built.
