file(REMOVE_RECURSE
  "CMakeFiles/fig5_avg_degree.dir/bench_common.cpp.o"
  "CMakeFiles/fig5_avg_degree.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig5_avg_degree.dir/fig5_avg_degree.cpp.o"
  "CMakeFiles/fig5_avg_degree.dir/fig5_avg_degree.cpp.o.d"
  "fig5_avg_degree"
  "fig5_avg_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_avg_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
