# Empty dependencies file for fig5_avg_degree.
# This may be replaced when dependencies are built.
