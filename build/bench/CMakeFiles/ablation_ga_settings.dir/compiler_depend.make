# Empty compiler generated dependencies file for ablation_ga_settings.
# This may be replaced when dependencies are built.
