file(REMOVE_RECURSE
  "CMakeFiles/ablation_ga_settings.dir/ablation_ga_settings.cpp.o"
  "CMakeFiles/ablation_ga_settings.dir/ablation_ga_settings.cpp.o.d"
  "CMakeFiles/ablation_ga_settings.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_ga_settings.dir/bench_common.cpp.o.d"
  "ablation_ga_settings"
  "ablation_ga_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ga_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
