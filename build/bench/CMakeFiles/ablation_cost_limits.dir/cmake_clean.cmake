file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_limits.dir/ablation_cost_limits.cpp.o"
  "CMakeFiles/ablation_cost_limits.dir/ablation_cost_limits.cpp.o.d"
  "CMakeFiles/ablation_cost_limits.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_cost_limits.dir/bench_common.cpp.o.d"
  "ablation_cost_limits"
  "ablation_cost_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
