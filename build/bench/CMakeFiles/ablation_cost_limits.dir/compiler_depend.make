# Empty compiler generated dependencies file for ablation_cost_limits.
# This may be replaced when dependencies are built.
