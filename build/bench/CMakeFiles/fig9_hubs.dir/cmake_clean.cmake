file(REMOVE_RECURSE
  "CMakeFiles/fig9_hubs.dir/bench_common.cpp.o"
  "CMakeFiles/fig9_hubs.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig9_hubs.dir/fig9_hubs.cpp.o"
  "CMakeFiles/fig9_hubs.dir/fig9_hubs.cpp.o.d"
  "fig9_hubs"
  "fig9_hubs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
