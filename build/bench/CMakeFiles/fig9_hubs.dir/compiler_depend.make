# Empty compiler generated dependencies file for fig9_hubs.
# This may be replaced when dependencies are built.
