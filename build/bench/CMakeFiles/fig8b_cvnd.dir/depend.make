# Empty dependencies file for fig8b_cvnd.
# This may be replaced when dependencies are built.
