file(REMOVE_RECURSE
  "CMakeFiles/fig8b_cvnd.dir/bench_common.cpp.o"
  "CMakeFiles/fig8b_cvnd.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig8b_cvnd.dir/fig8b_cvnd.cpp.o"
  "CMakeFiles/fig8b_cvnd.dir/fig8b_cvnd.cpp.o.d"
  "fig8b_cvnd"
  "fig8b_cvnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_cvnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
