file(REMOVE_RECURSE
  "CMakeFiles/fig1_dk_params.dir/bench_common.cpp.o"
  "CMakeFiles/fig1_dk_params.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig1_dk_params.dir/fig1_dk_params.cpp.o"
  "CMakeFiles/fig1_dk_params.dir/fig1_dk_params.cpp.o.d"
  "fig1_dk_params"
  "fig1_dk_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dk_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
