# Empty dependencies file for fig1_dk_params.
# This may be replaced when dependencies are built.
