# Empty dependencies file for fig2_dk_uniqueness.
# This may be replaced when dependencies are built.
