file(REMOVE_RECURSE
  "CMakeFiles/fig2_dk_uniqueness.dir/bench_common.cpp.o"
  "CMakeFiles/fig2_dk_uniqueness.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig2_dk_uniqueness.dir/fig2_dk_uniqueness.cpp.o"
  "CMakeFiles/fig2_dk_uniqueness.dir/fig2_dk_uniqueness.cpp.o.d"
  "fig2_dk_uniqueness"
  "fig2_dk_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dk_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
