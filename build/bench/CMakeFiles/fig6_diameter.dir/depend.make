# Empty dependencies file for fig6_diameter.
# This may be replaced when dependencies are built.
