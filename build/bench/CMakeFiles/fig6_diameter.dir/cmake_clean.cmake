file(REMOVE_RECURSE
  "CMakeFiles/fig6_diameter.dir/bench_common.cpp.o"
  "CMakeFiles/fig6_diameter.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig6_diameter.dir/fig6_diameter.cpp.o"
  "CMakeFiles/fig6_diameter.dir/fig6_diameter.cpp.o.d"
  "fig6_diameter"
  "fig6_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
