file(REMOVE_RECURSE
  "CMakeFiles/fig4_runtime.dir/bench_common.cpp.o"
  "CMakeFiles/fig4_runtime.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig4_runtime.dir/fig4_runtime.cpp.o"
  "CMakeFiles/fig4_runtime.dir/fig4_runtime.cpp.o.d"
  "fig4_runtime"
  "fig4_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
