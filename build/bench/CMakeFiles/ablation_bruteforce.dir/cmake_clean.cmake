file(REMOVE_RECURSE
  "CMakeFiles/ablation_bruteforce.dir/ablation_bruteforce.cpp.o"
  "CMakeFiles/ablation_bruteforce.dir/ablation_bruteforce.cpp.o.d"
  "CMakeFiles/ablation_bruteforce.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_bruteforce.dir/bench_common.cpp.o.d"
  "ablation_bruteforce"
  "ablation_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
