# Empty dependencies file for fig3_ga_vs_heuristics.
# This may be replaced when dependencies are built.
