file(REMOVE_RECURSE
  "CMakeFiles/fig3_ga_vs_heuristics.dir/bench_common.cpp.o"
  "CMakeFiles/fig3_ga_vs_heuristics.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig3_ga_vs_heuristics.dir/fig3_ga_vs_heuristics.cpp.o"
  "CMakeFiles/fig3_ga_vs_heuristics.dir/fig3_ga_vs_heuristics.cpp.o.d"
  "fig3_ga_vs_heuristics"
  "fig3_ga_vs_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ga_vs_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
