# Empty compiler generated dependencies file for isp_planning.
# This may be replaced when dependencies are built.
