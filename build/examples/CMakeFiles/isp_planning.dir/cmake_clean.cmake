file(REMOVE_RECURSE
  "CMakeFiles/isp_planning.dir/isp_planning.cpp.o"
  "CMakeFiles/isp_planning.dir/isp_planning.cpp.o.d"
  "isp_planning"
  "isp_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
