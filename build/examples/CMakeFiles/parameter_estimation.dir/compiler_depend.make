# Empty compiler generated dependencies file for parameter_estimation.
# This may be replaced when dependencies are built.
