file(REMOVE_RECURSE
  "CMakeFiles/parameter_estimation.dir/parameter_estimation.cpp.o"
  "CMakeFiles/parameter_estimation.dir/parameter_estimation.cpp.o.d"
  "parameter_estimation"
  "parameter_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
