file(REMOVE_RECURSE
  "CMakeFiles/router_level.dir/router_level.cpp.o"
  "CMakeFiles/router_level.dir/router_level.cpp.o.d"
  "router_level"
  "router_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
