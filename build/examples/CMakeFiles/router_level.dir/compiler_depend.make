# Empty compiler generated dependencies file for router_level.
# This may be replaced when dependencies are built.
