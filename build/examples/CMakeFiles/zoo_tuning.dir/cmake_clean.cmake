file(REMOVE_RECURSE
  "CMakeFiles/zoo_tuning.dir/zoo_tuning.cpp.o"
  "CMakeFiles/zoo_tuning.dir/zoo_tuning.cpp.o.d"
  "zoo_tuning"
  "zoo_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
