# Empty compiler generated dependencies file for zoo_tuning.
# This may be replaced when dependencies are built.
