# Empty compiler generated dependencies file for multi_as.
# This may be replaced when dependencies are built.
