file(REMOVE_RECURSE
  "CMakeFiles/multi_as.dir/multi_as.cpp.o"
  "CMakeFiles/multi_as.dir/multi_as.cpp.o.d"
  "multi_as"
  "multi_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
