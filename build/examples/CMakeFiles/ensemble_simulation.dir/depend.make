# Empty dependencies file for ensemble_simulation.
# This may be replaced when dependencies are built.
