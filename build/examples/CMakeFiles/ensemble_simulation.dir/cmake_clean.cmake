file(REMOVE_RECURSE
  "CMakeFiles/ensemble_simulation.dir/ensemble_simulation.cpp.o"
  "CMakeFiles/ensemble_simulation.dir/ensemble_simulation.cpp.o.d"
  "ensemble_simulation"
  "ensemble_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
