# Empty compiler generated dependencies file for network_growth.
# This may be replaced when dependencies are built.
