file(REMOVE_RECURSE
  "CMakeFiles/network_growth.dir/network_growth.cpp.o"
  "CMakeFiles/network_growth.dir/network_growth.cpp.o.d"
  "network_growth"
  "network_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
