
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/gravity.cpp" "src/CMakeFiles/cold_traffic.dir/traffic/gravity.cpp.o" "gcc" "src/CMakeFiles/cold_traffic.dir/traffic/gravity.cpp.o.d"
  "/root/repo/src/traffic/ipf.cpp" "src/CMakeFiles/cold_traffic.dir/traffic/ipf.cpp.o" "gcc" "src/CMakeFiles/cold_traffic.dir/traffic/ipf.cpp.o.d"
  "/root/repo/src/traffic/population.cpp" "src/CMakeFiles/cold_traffic.dir/traffic/population.cpp.o" "gcc" "src/CMakeFiles/cold_traffic.dir/traffic/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cold_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
