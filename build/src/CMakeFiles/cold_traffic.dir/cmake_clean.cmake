file(REMOVE_RECURSE
  "CMakeFiles/cold_traffic.dir/traffic/gravity.cpp.o"
  "CMakeFiles/cold_traffic.dir/traffic/gravity.cpp.o.d"
  "CMakeFiles/cold_traffic.dir/traffic/ipf.cpp.o"
  "CMakeFiles/cold_traffic.dir/traffic/ipf.cpp.o.d"
  "CMakeFiles/cold_traffic.dir/traffic/population.cpp.o"
  "CMakeFiles/cold_traffic.dir/traffic/population.cpp.o.d"
  "libcold_traffic.a"
  "libcold_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
