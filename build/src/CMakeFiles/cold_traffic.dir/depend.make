# Empty dependencies file for cold_traffic.
# This may be replaced when dependencies are built.
