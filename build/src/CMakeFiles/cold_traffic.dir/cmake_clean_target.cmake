file(REMOVE_RECURSE
  "libcold_traffic.a"
)
