file(REMOVE_RECURSE
  "CMakeFiles/cold_dk.dir/dk/degree_sequence.cpp.o"
  "CMakeFiles/cold_dk.dir/dk/degree_sequence.cpp.o.d"
  "CMakeFiles/cold_dk.dir/dk/dk_rewire.cpp.o"
  "CMakeFiles/cold_dk.dir/dk/dk_rewire.cpp.o.d"
  "CMakeFiles/cold_dk.dir/dk/dk_search.cpp.o"
  "CMakeFiles/cold_dk.dir/dk/dk_search.cpp.o.d"
  "CMakeFiles/cold_dk.dir/dk/dk_series.cpp.o"
  "CMakeFiles/cold_dk.dir/dk/dk_series.cpp.o.d"
  "libcold_dk.a"
  "libcold_dk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_dk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
