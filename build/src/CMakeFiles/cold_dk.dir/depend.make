# Empty dependencies file for cold_dk.
# This may be replaced when dependencies are built.
