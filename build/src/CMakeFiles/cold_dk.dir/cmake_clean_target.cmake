file(REMOVE_RECURSE
  "libcold_dk.a"
)
