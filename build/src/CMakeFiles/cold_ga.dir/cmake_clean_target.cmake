file(REMOVE_RECURSE
  "libcold_ga.a"
)
