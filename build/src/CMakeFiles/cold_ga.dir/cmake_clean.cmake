file(REMOVE_RECURSE
  "CMakeFiles/cold_ga.dir/ga/genetic.cpp.o"
  "CMakeFiles/cold_ga.dir/ga/genetic.cpp.o.d"
  "CMakeFiles/cold_ga.dir/ga/operators.cpp.o"
  "CMakeFiles/cold_ga.dir/ga/operators.cpp.o.d"
  "CMakeFiles/cold_ga.dir/ga/repair.cpp.o"
  "CMakeFiles/cold_ga.dir/ga/repair.cpp.o.d"
  "libcold_ga.a"
  "libcold_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
