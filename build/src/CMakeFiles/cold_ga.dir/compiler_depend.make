# Empty compiler generated dependencies file for cold_ga.
# This may be replaced when dependencies are built.
