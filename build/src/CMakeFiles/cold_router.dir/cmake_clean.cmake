file(REMOVE_RECURSE
  "CMakeFiles/cold_router.dir/router/expansion.cpp.o"
  "CMakeFiles/cold_router.dir/router/expansion.cpp.o.d"
  "CMakeFiles/cold_router.dir/router/graph_products.cpp.o"
  "CMakeFiles/cold_router.dir/router/graph_products.cpp.o.d"
  "libcold_router.a"
  "libcold_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
