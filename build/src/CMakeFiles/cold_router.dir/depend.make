# Empty dependencies file for cold_router.
# This may be replaced when dependencies are built.
