file(REMOVE_RECURSE
  "libcold_router.a"
)
