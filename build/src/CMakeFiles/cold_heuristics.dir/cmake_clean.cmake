file(REMOVE_RECURSE
  "CMakeFiles/cold_heuristics.dir/heuristics/brute_force.cpp.o"
  "CMakeFiles/cold_heuristics.dir/heuristics/brute_force.cpp.o.d"
  "CMakeFiles/cold_heuristics.dir/heuristics/hub_heuristics.cpp.o"
  "CMakeFiles/cold_heuristics.dir/heuristics/hub_heuristics.cpp.o.d"
  "CMakeFiles/cold_heuristics.dir/heuristics/local_search.cpp.o"
  "CMakeFiles/cold_heuristics.dir/heuristics/local_search.cpp.o.d"
  "libcold_heuristics.a"
  "libcold_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
