file(REMOVE_RECURSE
  "libcold_heuristics.a"
)
