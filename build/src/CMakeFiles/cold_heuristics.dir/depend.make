# Empty dependencies file for cold_heuristics.
# This may be replaced when dependencies are built.
