file(REMOVE_RECURSE
  "libcold_io.a"
)
