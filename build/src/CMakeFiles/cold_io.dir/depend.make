# Empty dependencies file for cold_io.
# This may be replaced when dependencies are built.
