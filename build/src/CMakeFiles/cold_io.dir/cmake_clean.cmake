file(REMOVE_RECURSE
  "CMakeFiles/cold_io.dir/io/dot.cpp.o"
  "CMakeFiles/cold_io.dir/io/dot.cpp.o.d"
  "CMakeFiles/cold_io.dir/io/edgelist.cpp.o"
  "CMakeFiles/cold_io.dir/io/edgelist.cpp.o.d"
  "CMakeFiles/cold_io.dir/io/graphml.cpp.o"
  "CMakeFiles/cold_io.dir/io/graphml.cpp.o.d"
  "CMakeFiles/cold_io.dir/io/json.cpp.o"
  "CMakeFiles/cold_io.dir/io/json.cpp.o.d"
  "libcold_io.a"
  "libcold_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
