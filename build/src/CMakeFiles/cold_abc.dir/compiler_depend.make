# Empty compiler generated dependencies file for cold_abc.
# This may be replaced when dependencies are built.
