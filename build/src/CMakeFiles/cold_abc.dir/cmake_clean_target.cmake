file(REMOVE_RECURSE
  "libcold_abc.a"
)
