file(REMOVE_RECURSE
  "CMakeFiles/cold_abc.dir/abc/abc.cpp.o"
  "CMakeFiles/cold_abc.dir/abc/abc.cpp.o.d"
  "libcold_abc.a"
  "libcold_abc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_abc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
