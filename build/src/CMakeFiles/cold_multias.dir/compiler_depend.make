# Empty compiler generated dependencies file for cold_multias.
# This may be replaced when dependencies are built.
