file(REMOVE_RECURSE
  "CMakeFiles/cold_multias.dir/multias/multias.cpp.o"
  "CMakeFiles/cold_multias.dir/multias/multias.cpp.o.d"
  "libcold_multias.a"
  "libcold_multias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_multias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
