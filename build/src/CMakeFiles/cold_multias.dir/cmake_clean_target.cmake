file(REMOVE_RECURSE
  "libcold_multias.a"
)
