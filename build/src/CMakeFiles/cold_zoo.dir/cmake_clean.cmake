file(REMOVE_RECURSE
  "CMakeFiles/cold_zoo.dir/zoo/zoo.cpp.o"
  "CMakeFiles/cold_zoo.dir/zoo/zoo.cpp.o.d"
  "libcold_zoo.a"
  "libcold_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
