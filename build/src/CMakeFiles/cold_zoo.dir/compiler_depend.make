# Empty compiler generated dependencies file for cold_zoo.
# This may be replaced when dependencies are built.
