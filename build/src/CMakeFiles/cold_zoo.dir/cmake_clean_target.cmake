file(REMOVE_RECURSE
  "libcold_zoo.a"
)
