# Empty dependencies file for cold_sim.
# This may be replaced when dependencies are built.
