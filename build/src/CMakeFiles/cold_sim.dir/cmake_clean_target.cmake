file(REMOVE_RECURSE
  "libcold_sim.a"
)
