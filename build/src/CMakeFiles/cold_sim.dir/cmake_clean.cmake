file(REMOVE_RECURSE
  "CMakeFiles/cold_sim.dir/sim/capacity.cpp.o"
  "CMakeFiles/cold_sim.dir/sim/capacity.cpp.o.d"
  "CMakeFiles/cold_sim.dir/sim/failure.cpp.o"
  "CMakeFiles/cold_sim.dir/sim/failure.cpp.o.d"
  "libcold_sim.a"
  "libcold_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
