# Empty compiler generated dependencies file for cold_sim.
# This may be replaced when dependencies are built.
