file(REMOVE_RECURSE
  "CMakeFiles/cold_cost.dir/cost/cost_model.cpp.o"
  "CMakeFiles/cold_cost.dir/cost/cost_model.cpp.o.d"
  "CMakeFiles/cold_cost.dir/cost/evaluator.cpp.o"
  "CMakeFiles/cold_cost.dir/cost/evaluator.cpp.o.d"
  "libcold_cost.a"
  "libcold_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
