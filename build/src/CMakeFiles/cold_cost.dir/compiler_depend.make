# Empty compiler generated dependencies file for cold_cost.
# This may be replaced when dependencies are built.
