file(REMOVE_RECURSE
  "libcold_cost.a"
)
