file(REMOVE_RECURSE
  "libcold_geom.a"
)
