# Empty dependencies file for cold_geom.
# This may be replaced when dependencies are built.
