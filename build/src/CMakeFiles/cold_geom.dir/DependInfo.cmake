
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/distance.cpp" "src/CMakeFiles/cold_geom.dir/geom/distance.cpp.o" "gcc" "src/CMakeFiles/cold_geom.dir/geom/distance.cpp.o.d"
  "/root/repo/src/geom/point_process.cpp" "src/CMakeFiles/cold_geom.dir/geom/point_process.cpp.o" "gcc" "src/CMakeFiles/cold_geom.dir/geom/point_process.cpp.o.d"
  "/root/repo/src/geom/region.cpp" "src/CMakeFiles/cold_geom.dir/geom/region.cpp.o" "gcc" "src/CMakeFiles/cold_geom.dir/geom/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cold_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
