file(REMOVE_RECURSE
  "CMakeFiles/cold_geom.dir/geom/distance.cpp.o"
  "CMakeFiles/cold_geom.dir/geom/distance.cpp.o.d"
  "CMakeFiles/cold_geom.dir/geom/point_process.cpp.o"
  "CMakeFiles/cold_geom.dir/geom/point_process.cpp.o.d"
  "CMakeFiles/cold_geom.dir/geom/region.cpp.o"
  "CMakeFiles/cold_geom.dir/geom/region.cpp.o.d"
  "libcold_geom.a"
  "libcold_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
