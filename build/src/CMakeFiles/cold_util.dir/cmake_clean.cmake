file(REMOVE_RECURSE
  "CMakeFiles/cold_util.dir/util/csv.cpp.o"
  "CMakeFiles/cold_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/cold_util.dir/util/rng.cpp.o"
  "CMakeFiles/cold_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cold_util.dir/util/stats.cpp.o"
  "CMakeFiles/cold_util.dir/util/stats.cpp.o.d"
  "libcold_util.a"
  "libcold_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
