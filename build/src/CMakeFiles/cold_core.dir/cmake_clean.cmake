file(REMOVE_RECURSE
  "CMakeFiles/cold_core.dir/core/context.cpp.o"
  "CMakeFiles/cold_core.dir/core/context.cpp.o.d"
  "CMakeFiles/cold_core.dir/core/ensemble.cpp.o"
  "CMakeFiles/cold_core.dir/core/ensemble.cpp.o.d"
  "CMakeFiles/cold_core.dir/core/presets.cpp.o"
  "CMakeFiles/cold_core.dir/core/presets.cpp.o.d"
  "CMakeFiles/cold_core.dir/core/synthesizer.cpp.o"
  "CMakeFiles/cold_core.dir/core/synthesizer.cpp.o.d"
  "libcold_core.a"
  "libcold_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
