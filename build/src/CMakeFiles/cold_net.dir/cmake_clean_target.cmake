file(REMOVE_RECURSE
  "libcold_net.a"
)
