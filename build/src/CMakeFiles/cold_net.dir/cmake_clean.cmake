file(REMOVE_RECURSE
  "CMakeFiles/cold_net.dir/net/network.cpp.o"
  "CMakeFiles/cold_net.dir/net/network.cpp.o.d"
  "CMakeFiles/cold_net.dir/net/routing.cpp.o"
  "CMakeFiles/cold_net.dir/net/routing.cpp.o.d"
  "libcold_net.a"
  "libcold_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
