# Empty dependencies file for cold_net.
# This may be replaced when dependencies are built.
