# Empty dependencies file for cold_growth.
# This may be replaced when dependencies are built.
