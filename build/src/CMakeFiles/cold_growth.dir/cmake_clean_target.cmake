file(REMOVE_RECURSE
  "libcold_growth.a"
)
