file(REMOVE_RECURSE
  "CMakeFiles/cold_growth.dir/growth/growth.cpp.o"
  "CMakeFiles/cold_growth.dir/growth/growth.cpp.o.d"
  "libcold_growth.a"
  "libcold_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
