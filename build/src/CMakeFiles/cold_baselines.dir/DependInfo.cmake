
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/erdos_renyi.cpp" "src/CMakeFiles/cold_baselines.dir/baselines/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/cold_baselines.dir/baselines/erdos_renyi.cpp.o.d"
  "/root/repo/src/baselines/fkp.cpp" "src/CMakeFiles/cold_baselines.dir/baselines/fkp.cpp.o" "gcc" "src/CMakeFiles/cold_baselines.dir/baselines/fkp.cpp.o.d"
  "/root/repo/src/baselines/plrg.cpp" "src/CMakeFiles/cold_baselines.dir/baselines/plrg.cpp.o" "gcc" "src/CMakeFiles/cold_baselines.dir/baselines/plrg.cpp.o.d"
  "/root/repo/src/baselines/transit_stub.cpp" "src/CMakeFiles/cold_baselines.dir/baselines/transit_stub.cpp.o" "gcc" "src/CMakeFiles/cold_baselines.dir/baselines/transit_stub.cpp.o.d"
  "/root/repo/src/baselines/waxman.cpp" "src/CMakeFiles/cold_baselines.dir/baselines/waxman.cpp.o" "gcc" "src/CMakeFiles/cold_baselines.dir/baselines/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cold_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
