file(REMOVE_RECURSE
  "CMakeFiles/cold_baselines.dir/baselines/erdos_renyi.cpp.o"
  "CMakeFiles/cold_baselines.dir/baselines/erdos_renyi.cpp.o.d"
  "CMakeFiles/cold_baselines.dir/baselines/fkp.cpp.o"
  "CMakeFiles/cold_baselines.dir/baselines/fkp.cpp.o.d"
  "CMakeFiles/cold_baselines.dir/baselines/plrg.cpp.o"
  "CMakeFiles/cold_baselines.dir/baselines/plrg.cpp.o.d"
  "CMakeFiles/cold_baselines.dir/baselines/transit_stub.cpp.o"
  "CMakeFiles/cold_baselines.dir/baselines/transit_stub.cpp.o.d"
  "CMakeFiles/cold_baselines.dir/baselines/waxman.cpp.o"
  "CMakeFiles/cold_baselines.dir/baselines/waxman.cpp.o.d"
  "libcold_baselines.a"
  "libcold_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
