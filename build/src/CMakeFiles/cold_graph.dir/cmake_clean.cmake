file(REMOVE_RECURSE
  "CMakeFiles/cold_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/algorithms.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/isomorphism.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/isomorphism.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/k_shortest.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/k_shortest.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/metrics.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/metrics.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/shortest_paths.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/shortest_paths.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/spectral.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/spectral.cpp.o.d"
  "CMakeFiles/cold_graph.dir/graph/topology.cpp.o"
  "CMakeFiles/cold_graph.dir/graph/topology.cpp.o.d"
  "libcold_graph.a"
  "libcold_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
