
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/cold_graph.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/cold_graph.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/CMakeFiles/cold_graph.dir/graph/isomorphism.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/isomorphism.cpp.o.d"
  "/root/repo/src/graph/k_shortest.cpp" "src/CMakeFiles/cold_graph.dir/graph/k_shortest.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/k_shortest.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/cold_graph.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/shortest_paths.cpp" "src/CMakeFiles/cold_graph.dir/graph/shortest_paths.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/shortest_paths.cpp.o.d"
  "/root/repo/src/graph/spectral.cpp" "src/CMakeFiles/cold_graph.dir/graph/spectral.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/spectral.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "src/CMakeFiles/cold_graph.dir/graph/topology.cpp.o" "gcc" "src/CMakeFiles/cold_graph.dir/graph/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cold_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
