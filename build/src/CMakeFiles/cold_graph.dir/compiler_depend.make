# Empty compiler generated dependencies file for cold_graph.
# This may be replaced when dependencies are built.
