# Empty compiler generated dependencies file for test_ipf.
# This may be replaced when dependencies are built.
