file(REMOVE_RECURSE
  "CMakeFiles/test_multias.dir/test_multias.cpp.o"
  "CMakeFiles/test_multias.dir/test_multias.cpp.o.d"
  "test_multias"
  "test_multias.pdb"
  "test_multias[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
