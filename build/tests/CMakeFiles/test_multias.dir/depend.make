# Empty dependencies file for test_multias.
# This may be replaced when dependencies are built.
