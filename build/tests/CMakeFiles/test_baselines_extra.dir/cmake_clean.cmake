file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_extra.dir/test_baselines_extra.cpp.o"
  "CMakeFiles/test_baselines_extra.dir/test_baselines_extra.cpp.o.d"
  "test_baselines_extra"
  "test_baselines_extra.pdb"
  "test_baselines_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
