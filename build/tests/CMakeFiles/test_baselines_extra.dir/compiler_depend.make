# Empty compiler generated dependencies file for test_baselines_extra.
# This may be replaced when dependencies are built.
