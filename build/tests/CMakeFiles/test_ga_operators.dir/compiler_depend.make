# Empty compiler generated dependencies file for test_ga_operators.
# This may be replaced when dependencies are built.
