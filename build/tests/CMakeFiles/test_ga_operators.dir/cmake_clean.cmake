file(REMOVE_RECURSE
  "CMakeFiles/test_ga_operators.dir/test_ga_operators.cpp.o"
  "CMakeFiles/test_ga_operators.dir/test_ga_operators.cpp.o.d"
  "test_ga_operators"
  "test_ga_operators.pdb"
  "test_ga_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ga_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
