file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_csv.dir/test_matrix_csv.cpp.o"
  "CMakeFiles/test_matrix_csv.dir/test_matrix_csv.cpp.o.d"
  "test_matrix_csv"
  "test_matrix_csv.pdb"
  "test_matrix_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
