# Empty dependencies file for test_matrix_csv.
# This may be replaced when dependencies are built.
