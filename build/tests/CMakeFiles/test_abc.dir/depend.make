# Empty dependencies file for test_abc.
# This may be replaced when dependencies are built.
