file(REMOVE_RECURSE
  "CMakeFiles/test_abc.dir/test_abc.cpp.o"
  "CMakeFiles/test_abc.dir/test_abc.cpp.o.d"
  "test_abc"
  "test_abc.pdb"
  "test_abc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
