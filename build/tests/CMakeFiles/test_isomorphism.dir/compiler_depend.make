# Empty compiler generated dependencies file for test_isomorphism.
# This may be replaced when dependencies are built.
