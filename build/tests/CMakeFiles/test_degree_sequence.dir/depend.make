# Empty dependencies file for test_degree_sequence.
# This may be replaced when dependencies are built.
