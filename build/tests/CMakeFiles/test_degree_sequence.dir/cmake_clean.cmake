file(REMOVE_RECURSE
  "CMakeFiles/test_degree_sequence.dir/test_degree_sequence.cpp.o"
  "CMakeFiles/test_degree_sequence.dir/test_degree_sequence.cpp.o.d"
  "test_degree_sequence"
  "test_degree_sequence.pdb"
  "test_degree_sequence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
