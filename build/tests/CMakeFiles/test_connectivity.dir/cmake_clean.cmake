file(REMOVE_RECURSE
  "CMakeFiles/test_connectivity.dir/test_connectivity.cpp.o"
  "CMakeFiles/test_connectivity.dir/test_connectivity.cpp.o.d"
  "test_connectivity"
  "test_connectivity.pdb"
  "test_connectivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
