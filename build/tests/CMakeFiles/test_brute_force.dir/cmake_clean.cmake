file(REMOVE_RECURSE
  "CMakeFiles/test_brute_force.dir/test_brute_force.cpp.o"
  "CMakeFiles/test_brute_force.dir/test_brute_force.cpp.o.d"
  "test_brute_force"
  "test_brute_force.pdb"
  "test_brute_force[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brute_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
