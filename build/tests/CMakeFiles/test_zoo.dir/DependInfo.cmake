
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_zoo.cpp" "tests/CMakeFiles/test_zoo.dir/test_zoo.cpp.o" "gcc" "tests/CMakeFiles/test_zoo.dir/test_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cold_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_dk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_abc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_growth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_multias.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cold_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
