file(REMOVE_RECURSE
  "CMakeFiles/test_graph_products.dir/test_graph_products.cpp.o"
  "CMakeFiles/test_graph_products.dir/test_graph_products.cpp.o.d"
  "test_graph_products"
  "test_graph_products.pdb"
  "test_graph_products[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
