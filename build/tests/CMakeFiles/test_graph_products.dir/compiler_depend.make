# Empty compiler generated dependencies file for test_graph_products.
# This may be replaced when dependencies are built.
