file(REMOVE_RECURSE
  "CMakeFiles/test_capacity_paths.dir/test_capacity_paths.cpp.o"
  "CMakeFiles/test_capacity_paths.dir/test_capacity_paths.cpp.o.d"
  "test_capacity_paths"
  "test_capacity_paths.pdb"
  "test_capacity_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacity_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
