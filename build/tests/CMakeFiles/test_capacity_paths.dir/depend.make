# Empty dependencies file for test_capacity_paths.
# This may be replaced when dependencies are built.
