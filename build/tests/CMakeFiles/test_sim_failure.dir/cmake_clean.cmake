file(REMOVE_RECURSE
  "CMakeFiles/test_sim_failure.dir/test_sim_failure.cpp.o"
  "CMakeFiles/test_sim_failure.dir/test_sim_failure.cpp.o.d"
  "test_sim_failure"
  "test_sim_failure.pdb"
  "test_sim_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
