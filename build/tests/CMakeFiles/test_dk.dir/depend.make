# Empty dependencies file for test_dk.
# This may be replaced when dependencies are built.
