file(REMOVE_RECURSE
  "CMakeFiles/test_dk.dir/test_dk.cpp.o"
  "CMakeFiles/test_dk.dir/test_dk.cpp.o.d"
  "test_dk"
  "test_dk.pdb"
  "test_dk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
