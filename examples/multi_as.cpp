// Multi-AS synthesis (paper §2's sketched extension): several providers
// share a set of cities; each synthesizes its own PoP network with COLD;
// interconnects between providers are placed in shared cities by the same
// cost logic, trading interconnect cost against traffic haul distance.
#include <iostream>

#include "graph/metrics.h"
#include "multias/multias.h"

int main() {
  cold::MultiAsConfig cfg;
  cfg.num_cities = 25;
  cfg.num_ases = 3;
  cfg.presence_probability = 0.55;
  cfg.min_presence = 5;
  cfg.costs = cold::CostParams{10.0, 1.0, 4e-4, 10.0};
  cfg.ga.population = 32;
  cfg.ga.generations = 24;
  cfg.interconnect_cost = 50.0;

  const cold::MultiAsResult r = cold::synthesize_multi_as(cfg, 7);

  std::cout << "Shared geography: " << r.cities.size() << " cities, "
            << r.ases.size() << " providers\n\n";
  for (const cold::AsNetwork& asn : r.ases) {
    const cold::TopologyMetrics m = cold::compute_metrics(asn.network.topology);
    std::printf("AS%zu: presence in %2zu cities, %2zu links, avg degree "
                "%.2f, diameter %d, %zu hub PoPs\n",
                asn.as_id, asn.cities.size(), m.edges, m.avg_degree,
                m.diameter, m.hubs);
  }

  std::cout << "\nInterconnects (peering points chosen greedily against the "
            << "interconnect cost):\n";
  for (const cold::Interconnect& ic : r.interconnects) {
    std::printf("  AS%zu <-> AS%zu in city %2zu  (demand %.0f)\n", ic.as_a,
                ic.as_b, ic.city, ic.demand);
  }
  if (!r.unpeered.empty()) {
    std::cout << "unpeered pairs (no shared city):";
    for (const auto& [a, b] : r.unpeered) {
      std::cout << " AS" << a << "-AS" << b;
    }
    std::cout << "\n";
  }

  // Cheap interconnects spread the peering fabric; expensive ones
  // concentrate it on one city per pair.
  cold::MultiAsConfig cheap = cfg;
  cheap.interconnect_cost = 0.01;
  const cold::MultiAsResult r2 = cold::synthesize_multi_as(cheap, 7);
  std::cout << "\nWith ~5000x cheaper interconnects the peering fabric spreads: "
            << r.interconnects.size() << " -> " << r2.interconnects.size()
            << " peering points.\n";
  return 0;
}
