// Router-level expansion (the paper's layered-design step, §1/§8): optimize
// the PoP level with COLD, then instantiate each PoP's internals from a
// design template — redundant core routers for core PoPs, access routers
// sized by offered traffic, dual-star intra-PoP wiring.
#include <algorithm>
#include <iostream>

#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "router/expansion.h"

int main() {
  // PoP-level synthesis.
  cold::SynthesisConfig cfg;
  cfg.context.num_pops = 15;
  cfg.costs = cold::CostParams{10.0, 1.0, 4e-4, 50.0};
  cfg.ga.population = 40;
  cfg.ga.generations = 30;
  const cold::Synthesizer synth(cfg);
  const cold::SynthesisResult r = synth.synthesize(3);
  const cold::Network& net = r.network;

  std::cout << "PoP level: " << net.num_pops() << " PoPs, " << net.num_links()
            << " inter-PoP links, "
            << net.topology.num_core_nodes() << " core PoPs\n\n";

  // Router-level expansion.
  cold::ExpansionConfig expansion;
  expansion.access_router_capacity = 2000.0;
  const cold::RouterNetwork rn = cold::expand_to_router_level(net, expansion);
  cold::validate_router_network(rn, net);

  std::size_t cores = 0, access = 0, inter = 0, intra = 0;
  for (const cold::Router& router : rn.routers) {
    (router.role == cold::RouterRole::kCore ? cores : access) += 1;
  }
  for (const cold::RouterLink& link : rn.links) {
    (link.inter_pop ? inter : intra) += 1;
  }
  std::cout << "Router level: " << rn.num_routers() << " routers (" << cores
            << " core, " << access << " access), " << rn.links.size()
            << " links (" << inter << " inter-PoP, " << intra
            << " intra-PoP)\n\n";

  std::cout << "Per-PoP template instantiation:\n";
  std::cout << "  PoP  degree  core-rtrs  access-rtrs\n";
  for (std::size_t p = 0; p < net.num_pops(); ++p) {
    std::size_t pc = 0, pa = 0;
    for (std::size_t rid : rn.routers_of_pop(p)) {
      (rn.routers[rid].role == cold::RouterRole::kCore ? pc : pa) += 1;
    }
    std::printf("  %3zu  %6d  %9zu  %11zu\n", p, net.topology.degree(p), pc,
                pa);
  }

  const cold::TopologyMetrics m = cold::compute_metrics(rn.graph);
  std::cout << "\nRouter-level graph: diameter " << m.diameter
            << " hops, avg degree " << m.avg_degree
            << " (connected=" << (m.connected ? "yes" : "no") << ")\n";
  std::cout << "\nNote the paper's design intuition made concrete: core PoPs "
               "(degree > 1) get\nredundant core routers; leaf PoPs stay "
               "single-router; access capacity follows\nthe gravity-model "
               "offered load.\n";
  return 0;
}
