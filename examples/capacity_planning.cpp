// Capacity planning on a synthesized network: where the headroom runs out
// as traffic grows, what protection paths exist for the busiest demand,
// and what an upgrade costs under the same cost model the network was
// designed with.
#include <algorithm>
#include <iostream>

#include "core/presets.h"
#include "core/synthesizer.h"
#include "graph/k_shortest.h"
#include "sim/capacity.h"

int main() {
  // A "regional" style network, provisioned with 25% headroom.
  cold::SynthesisConfig cfg;
  cfg.context.num_pops = 20;
  cfg.costs = cold::preset_costs(cold::NetworkStyle::kRegional);
  cfg.ga.population = 40;
  cfg.ga.generations = 32;
  cfg.overprovision = 1.25;
  const cold::Synthesizer synth(cfg);
  const cold::Network net = synth.synthesize(11).network;

  std::cout << "Network: " << net.num_pops() << " PoPs, " << net.num_links()
            << " links, overprovision " << net.overprovision << "\n\n";

  // 1. How much growth fits?
  const double headroom = cold::max_traffic_multiplier(net);
  std::cout << "Max uniform traffic multiplier before overload: " << headroom
            << " (equals the provisioning factor under shortest-path "
               "routing)\n\n";

  // 2. Which links bind first?
  std::cout << "Most-constrained links:\n";
  const auto ranking = cold::headroom_ranking(net);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i) {
    const auto& h = ranking[i];
    std::printf("  PoP%zu -- PoP%zu  load %.0f / cap %.0f  (util %.2f)\n",
                h.edge.u, h.edge.v, h.load, h.capacity, h.utilization);
  }

  // 3. Protection paths for the demand crossing the busiest link.
  const cold::Edge busiest = ranking.front().edge;
  std::cout << "\nAlternate paths around the busiest link (PoP" << busiest.u
            << " -- PoP" << busiest.v << "):\n";
  const auto paths =
      cold::k_shortest_paths(net.topology, net.lengths, busiest.u, busiest.v, 3);
  for (const auto& p : paths) {
    std::printf("  length %.3f: ", p.length);
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      std::printf("%sPoP%zu", i ? " -> " : "", p.nodes[i]);
    }
    std::printf("\n");
  }
  const auto pair =
      cold::disjoint_path_pair(net.topology, net.lengths, busiest.u, busiest.v);
  std::cout << "  link-disjoint protection pair available: "
            << (pair.size() == 2 ? "yes" : "NO (upgrade needed)") << "\n";

  // 4. Cost of provisioning for 2x growth, in the design cost model.
  const auto need = cold::required_capacities(net, 2.0, net.overprovision);
  double extra_bandwidth_cost = 0.0;
  for (std::size_t i = 0; i < net.links.size(); ++i) {
    const double delta = need[i] - net.links[i].capacity;
    extra_bandwidth_cost += cfg.costs.k2 * net.links[i].length * delta;
  }
  std::cout << "\nUpgrading every link for 2x traffic adds "
            << extra_bandwidth_cost
            << " of k2-cost (same units as the synthesis objective), on top "
               "of the current bandwidth cost.\n";
  return 0;
}
