// ABC parameter estimation (paper §8 future work): given an observed
// PoP-level topology, infer which cost parameters COLD would need to produce
// networks like it.
//
// We "observe" two very different reference networks from the bundled
// synthetic zoo — a hub-and-spoke star and a chorded ring — and show the
// posterior concentrating on high k3 for the former and low k3 / higher k2
// for the latter.
#include <algorithm>
#include <iostream>

#include "abc/abc.h"
#include "graph/metrics.h"
#include "zoo/zoo.h"

namespace {

void estimate_and_report(const std::string& name, const cold::Topology& target,
                         std::uint64_t seed) {
  const cold::TopologyMetrics m = cold::compute_metrics(target);
  std::cout << "Observed '" << name << "': n=" << m.nodes
            << " avgdeg=" << m.avg_degree << " diam=" << m.diameter
            << " gcc=" << m.global_clustering << " cvnd=" << m.degree_cv
            << "\n";

  cold::AbcConfig cfg;
  cfg.num_draws = 80;
  cfg.epsilon = 0.5;
  cfg.ga.population = 20;
  cfg.ga.generations = 15;

  const cold::AbcResult r = cold::abc_estimate(target, cfg, seed);
  std::printf("  draws=%zu accepted=%zu (%.0f%%)\n", r.draws.size(),
              r.accepted.size(), 100.0 * r.acceptance_rate);
  if (r.accepted.empty()) {
    std::cout << "  no draws within epsilon — widen the prior or epsilon\n\n";
    return;
  }
  std::printf("  posterior mean: k0=%.2f k2=%.2e k3=%.2f\n",
              r.posterior_mean.k0, r.posterior_mean.k2, r.posterior_mean.k3);
  // Show the best few accepted draws.
  std::cout << "  closest accepted draws:\n";
  std::vector<cold::AbcDraw> accepted = r.accepted;
  std::sort(accepted.begin(), accepted.end(),
            [](const cold::AbcDraw& a, const cold::AbcDraw& b) {
              return a.distance < b.distance;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(3, accepted.size()); ++i) {
    std::printf("    dist=%.3f  %s\n", accepted[i].distance,
                accepted[i].params.to_string().c_str());
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "ABC estimation of COLD cost parameters from observed "
               "topologies\n"
            << "(rejection sampling; log-uniform priors; k1 fixed at 1)\n\n";

  estimate_and_report("hub-and-spoke (star-16)", cold::zoo_star(16), 1);
  estimate_and_report("chorded ring (ring-chords-20-4)",
                      cold::zoo_ring_with_chords(20, 4), 2);

  std::cout << "Expected contrast: the star's posterior needs a large hub "
               "cost k3 (CVND ~2 is\nunreachable otherwise — the paper's §7 "
               "argument), while the ring-like network\naccepts small k3 "
               "with the structure carried by k0/k2.\n";
  return 0;
}
