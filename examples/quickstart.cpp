// Quickstart: synthesize one PoP-level network and inspect / export it.
//
//   $ ./quickstart [seed]
//
// Demonstrates the one-call API: configure costs, synthesize, read the
// resulting Network (topology + coordinates + capacities + routing), and
// export to DOT/JSON/GraphML for downstream tools.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "io/dot.h"
#include "io/graphml.h"
#include "io/json.h"
#include "net/routing.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. Configure: 30 PoPs on the unit square, mid-range costs (k1 is the
  //    numeraire; k2 trades bandwidth-distance against link count; k3 prices
  //    PoP complexity).
  cold::SynthesisConfig config;
  config.context.num_pops = 30;
  config.costs = cold::CostParams{10.0, 1.0, 4e-4, 10.0};
  config.ga.population = 48;
  config.ga.generations = 40;

  // 2. Synthesize.
  const cold::Synthesizer synth(config);
  const cold::SynthesisResult result = synth.synthesize(seed);
  const cold::Network& net = result.network;

  // 3. Inspect.
  const cold::TopologyMetrics m = cold::compute_metrics(net.topology);
  std::cout << "Synthesized network (seed " << seed << "):\n"
            << "  PoPs:        " << net.num_pops() << "\n"
            << "  links:       " << net.num_links() << "\n"
            << "  avg degree:  " << m.avg_degree << "\n"
            << "  diameter:    " << m.diameter << " hops\n"
            << "  clustering:  " << m.global_clustering << "\n"
            << "  CVND:        " << m.degree_cv << "\n"
            << "  core PoPs:   " << m.hubs << ", leaf PoPs: " << m.leaves
            << "\n"
            << "  total cost:  " << result.cost.total() << "  ("
            << "links " << result.cost.existence << " + length "
            << result.cost.length << " + bandwidth " << result.cost.bandwidth
            << " + hubs " << result.cost.node << ")\n\n";

  double max_load = 0.0;
  for (const cold::Link& l : net.links) max_load = std::max(max_load, l.load);
  std::cout << "Heaviest links (load = traffic the link must carry):\n";
  for (const cold::Link& l : net.links) {
    if (l.load >= 0.5 * max_load) {
      std::cout << "  PoP" << l.edge.u << " -- PoP" << l.edge.v
                << "  length=" << l.length << "  capacity=" << l.capacity
                << "\n";
    }
  }

  // 4. A route lookup, as a simulator would do it.
  const auto path = cold::route_path(net.routing, 0, net.num_pops() - 1);
  std::cout << "\nShortest route PoP0 -> PoP" << net.num_pops() - 1 << ": ";
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::cout << (i ? " -> " : "") << "PoP" << path[i];
  }
  std::cout << "\n";

  // 5. Export.
  cold::write_dot_file("quickstart.dot", net);
  std::ofstream json("quickstart.json");
  cold::write_network_json(json, net);
  std::ofstream gml("quickstart.graphml");
  cold::write_graphml(gml, net);
  std::cout << "\nWrote quickstart.dot, quickstart.json, quickstart.graphml\n"
            << "Render with: neato -n -Tpng quickstart.dot -o quickstart.png\n";
  return 0;
}
