// Network evolution (paper §3: "networks are rarely designed from scratch —
// they evolve"): take a synthesized network through three growth epochs,
// adding PoPs and traffic while respecting the installed plant, and compare
// against what a greenfield redesign would have built.
#include <iostream>

#include "core/synthesizer.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "growth/growth.h"

namespace {

void report(const std::string& label, const cold::Network& net) {
  const cold::TopologyMetrics m = cold::compute_metrics(net.topology);
  const cold::ResilienceReport r = cold::analyze_resilience(net.topology);
  std::printf("%-28s %4zu PoPs  %4zu links  deg %.2f  diam %2d  hubs %2zu  "
              "bridges %2zu\n",
              label.c_str(), m.nodes, m.edges, m.avg_degree, m.diameter,
              m.hubs, r.bridges);
}

}  // namespace

int main() {
  const cold::CostParams costs{8.0, 1.0, 5e-4, 5.0};

  // Year 0: greenfield build, 12 PoPs.
  cold::SynthesisConfig cfg;
  cfg.context.num_pops = 12;
  cfg.costs = costs;
  cfg.ga.population = 40;
  cfg.ga.generations = 32;
  const cold::Synthesizer synth(cfg);
  cold::Network net = synth.synthesize(2).network;
  std::cout << "Three growth epochs (+5 PoPs, +25% traffic each):\n\n";
  report("year 0 (greenfield)", net);

  // Three brownfield epochs.
  cold::GrowthConfig growth;
  growth.new_pops = 5;
  growth.population_growth = 1.25;
  growth.decommission_factor = 1.0;  // removing plant costs its build price
  growth.costs = costs;
  growth.ga = cfg.ga;
  std::size_t total_removed = 0;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    const cold::GrowthResult r = cold::grow_network(net, growth, 100 + epoch);
    total_removed += r.links_removed;
    net = r.network;
    report("year " + std::to_string(epoch) + " (evolved)", net);
  }
  std::cout << "installed links decommissioned across all epochs: "
            << total_removed << "\n\n";

  // Counterfactual: greenfield redesign at final size and demand.
  cold::SynthesisConfig final_cfg = cfg;
  final_cfg.context.num_pops = net.num_pops();
  const cold::Synthesizer redesign(final_cfg);
  const cold::Network fresh = redesign.synthesize(999).network;
  report("greenfield counterfactual", fresh);

  std::cout << "\nThe evolved network carries its history: plant installed "
               "for early demand\npersists (decommissioning costs money), so "
               "it drifts from what a from-scratch\ndesign would build — the "
               "realism argument for modeling evolution explicitly.\n";
  return 0;
}
