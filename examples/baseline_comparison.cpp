// Baseline shoot-out (paper §2's narrative made concrete): generate
// same-size topologies from every generator in the library and compare the
// properties a simulation consumer cares about. COLD is the only one that
// is always connected AND ships capacities/routing; the structural
// generators impose their shapes a priori; the random models miss basic
// constraints.
#include <cstdio>
#include <iostream>

#include "baselines/erdos_renyi.h"
#include "baselines/fkp.h"
#include "baselines/plrg.h"
#include "baselines/transit_stub.h"
#include "baselines/waxman.h"
#include "core/presets.h"
#include "core/synthesizer.h"
#include "geom/point_process.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"

namespace {

void report(const std::string& name, const cold::Topology& g,
            bool has_capacities) {
  const cold::TopologyMetrics m = cold::compute_metrics(g);
  const cold::ResilienceReport r = cold::analyze_resilience(g);
  std::printf("%-14s %4zu %6zu  %-5s  %6.2f  %5.2f  %4d  %5.3f  %5zu  %s\n",
              name.c_str(), m.nodes, m.edges,
              m.connected ? "yes" : "NO", m.avg_degree, m.degree_cv,
              m.diameter, m.global_clustering, r.bridges,
              has_capacities ? "yes" : "no");
}

}  // namespace

int main() {
  const std::size_t n = 30;
  cold::Rng rng(7);
  const auto locations =
      cold::UniformProcess().sample(n, cold::Rectangle(), rng);

  std::cout << "One instance per generator, n ~ " << n << ":\n\n";
  std::printf("%-14s %4s %6s  %-5s  %6s  %5s  %4s  %5s  %5s  %s\n",
              "generator", "n", "links", "conn", "avgdeg", "cvnd", "diam",
              "gcc", "bridg", "capacities");
  std::cout << std::string(88, '-') << "\n";

  report("ER", cold::erdos_renyi_gnp(n, 0.08, rng), false);
  report("Waxman", cold::waxman(locations, cold::WaxmanParams{}, rng), false);
  report("PLRG", cold::plrg(n, cold::PlrgParams{2.3, 1, 0}, rng), false);
  report("FKP", cold::fkp(n, cold::FkpParams{6.0}, rng).topology, false);
  {
    cold::TransitStubParams ts;
    ts.transit_domains = 2;
    ts.transit_size = 3;
    ts.stubs_per_transit = 1;
    ts.stub_size = 4;
    report("transit-stub", cold::transit_stub(ts, rng).topology, false);
  }
  for (cold::NetworkStyle style :
       {cold::NetworkStyle::kHubAndSpoke, cold::NetworkStyle::kRegional,
        cold::NetworkStyle::kMesh}) {
    cold::SynthesisConfig cfg;
    cfg.context.num_pops = n;
    cfg.costs = cold::preset_costs(style);
    cfg.ga.population = 32;
    cfg.ga.generations = 24;
    const cold::Synthesizer synth(cfg);
    report("COLD " + cold::to_string(style),
           synth.synthesize(1).network.topology, true);
  }

  std::cout << "\nReading guide (the paper's §2 in one table):\n"
               "  * ER/PLRG frequently arrive disconnected — broken as data "
               "networks;\n"
               "  * Waxman respects geography but still has no capacity "
               "notion;\n"
               "  * FKP and transit-stub hard-code their structure (pure "
               "tree / fixed hierarchy);\n"
               "  * COLD spans hub-and-spoke to mesh with one knob set, "
               "always connected,\n"
               "    and is the only generator whose output carries "
               "capacities and routing.\n";
  return 0;
}
