// ISP planning scenario (paper §1): the same provider at three stages of
// market maturity, expressed purely through the cost parameters.
//
//   startup   — connectivity as cheaply as possible: link existence and
//               trenching dominate, PoP complexity is unaffordable.
//   growth    — bandwidth demand rises: k2 matters, some hubs appear.
//   mature    — performance-driven: bandwidth-distance cost dominates, the
//               backbone densifies into a low-diameter mesh.
//
// The PoP locations and traffic matrix are held fixed (same market!), so
// every difference between the three networks is attributable to the cost
// trade-offs — exactly the tunability argument of §6.
#include <iostream>

#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "io/dot.h"

int main() {
  const std::size_t n = 25;

  struct Stage {
    std::string name;
    cold::CostParams costs;
  };
  const std::vector<Stage> stages{
      {"startup (cheap connectivity)", {20.0, 1.0, 2e-5, 200.0}},
      {"growth (balanced)", {5.0, 1.0, 6e-4, 1.0}},
      {"mature (performance mesh)", {2.0, 1.0, 2e-3, 0.0}},
  };

  // One fixed market: same PoP locations and demands for all stages.
  cold::SynthesisConfig base;
  base.context.num_pops = n;
  base.ga.population = 48;
  base.ga.generations = 40;
  cold::Rng ctx_rng(7);
  const cold::Context market = cold::generate_context(base.context, ctx_rng);

  std::cout << "One market (" << n << " PoPs), three cost regimes:\n\n";
  std::cout << "stage                          links  avgdeg  diam  gcc    "
               "cvnd  hubs  cost\n";
  std::cout << "---------------------------------------------------------------"
               "-------\n";
  for (const Stage& stage : stages) {
    cold::SynthesisConfig cfg = base;
    cfg.costs = stage.costs;
    const cold::Synthesizer synth(cfg);
    const cold::SynthesisResult r = synth.synthesize_for_context(market, 1);
    const cold::TopologyMetrics m = cold::compute_metrics(r.network.topology);
    std::printf("%-30s %5zu  %5.2f  %4d  %5.3f  %4.2f  %4zu  %.1f\n",
                stage.name.c_str(), m.edges, m.avg_degree, m.diameter,
                m.global_clustering, m.degree_cv, m.hubs, r.cost.total());
    const std::string file =
        "isp_" + stage.name.substr(0, stage.name.find(' ')) + ".dot";
    cold::write_dot_file(file, r.network);
  }
  std::cout << "\nExpected progression: links and average degree rise with "
               "market maturity;\nthe startup network is hubby (high CVND, "
               "few core PoPs), the mature one meshy.\n";
  std::cout << "DOT files written for each stage (render with neato -n).\n";
  return 0;
}
