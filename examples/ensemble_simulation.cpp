// Ensemble generation for simulation studies — the paper's core use case
// (§1 challenge 1): produce many statistically similar but distinct
// networks, then use the spread to put confidence intervals on a simulated
// quantity.
//
// The "simulation" here is a simple one a networking researcher might run:
// single-link-failure impact — for each network, fail the most-loaded link
// and measure the fraction of traffic whose shortest path lengthens. The
// point is the workflow: ensemble in, per-network metric out, CI over the
// ensemble.
#include <iostream>

#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/algorithms.h"
#include "net/routing.h"
#include "util/stats.h"

namespace {

// Fraction of demand whose shortest-path length strictly increases when the
// highest-load link is removed (infinite if disconnected counts as
// increased).
double failure_impact(const cold::Network& net) {
  // Find the most-loaded link.
  const cold::Link* worst = &net.links.front();
  for (const cold::Link& l : net.links) {
    if (l.load > worst->load) worst = &l;
  }
  cold::Topology degraded = net.topology;
  degraded.remove_edge(worst->edge.u, worst->edge.v);

  double affected = 0.0, total = 0.0;
  for (cold::NodeId s = 0; s < net.num_pops(); ++s) {
    const auto before = cold::shortest_path_tree(net.topology, net.lengths, s);
    const auto after = cold::shortest_path_tree(degraded, net.lengths, s);
    for (cold::NodeId t = 0; t < net.num_pops(); ++t) {
      if (s == t) continue;
      total += net.traffic(s, t);
      if (after.hops[t] < 0 || after.dist[t] > before.dist[t] + 1e-12) {
        affected += net.traffic(s, t);
      }
    }
  }
  return total > 0 ? affected / total : 0.0;
}

}  // namespace

int main() {
  cold::SynthesisConfig cfg;
  cfg.context.num_pops = 20;
  cfg.costs = cold::CostParams{5.0, 1.0, 6e-4, 1.0};
  cfg.ga.population = 40;
  cfg.ga.generations = 30;
  const cold::Synthesizer synth(cfg);

  const std::size_t ensemble_size = 12;
  std::cout << "Generating an ensemble of " << ensemble_size
            << " networks (20 PoPs each)...\n";
  const cold::EnsembleResult ensemble =
      cold::generate_ensemble(synth, ensemble_size, /*base_seed=*/1);

  std::cout << "\nEnsemble statistics (mean [95% bootstrap CI]):\n";
  auto show = [](const char* name, const cold::ConfidenceInterval& ci) {
    std::printf("  %-12s %6.3f  [%6.3f, %6.3f]\n", name, ci.mean, ci.lo,
                ci.hi);
  };
  show("avg degree", ensemble.stats.avg_degree);
  show("diameter", ensemble.stats.diameter);
  show("clustering", ensemble.stats.clustering);
  show("CVND", ensemble.stats.degree_cv);
  show("hub PoPs", ensemble.stats.hubs);
  std::cout << "  min pairwise edge difference: "
            << ensemble.min_pairwise_edge_difference
            << ", all networks distinct: "
            << (ensemble.all_distinct ? "yes" : "no")
            << " (distinct by construction)\n";

  // The simulation study.
  std::vector<double> impacts;
  for (const cold::SynthesisResult& run : ensemble.runs()) {
    impacts.push_back(failure_impact(run.network));
  }
  const cold::ConfidenceInterval ci = cold::bootstrap_mean_ci(impacts);
  std::cout << "\nSimulation: worst-link failure impact (fraction of traffic "
               "re-routed onto longer paths)\n";
  std::printf("  mean %.3f  [%.3f, %.3f]  over %zu networks\n", ci.mean, ci.lo,
              ci.hi, impacts.size());
  std::cout << "\nThis is the workflow the paper motivates: a protocol or "
               "algorithm evaluated\nover a COLD ensemble yields a "
               "confidence interval, not a single anecdote.\n";
  return 0;
}
