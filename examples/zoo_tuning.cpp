// Tunability against observed networks (paper §6): show that sweeping
// (k2, k3) drives COLD's output metrics across the ranges spanned by the
// reference zoo ensemble — the paper's claim is exactly this coverage, not
// that any specific network is replicated.
//
// For each zoo network we also run the ABC machinery's distance to report
// the closest COLD configuration from a small (k2, k3) grid — a poor-man's
// version of the parameter estimation the paper proposes as future work.
#include <algorithm>
#include <iostream>
#include <limits>

#include "abc/abc.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "util/stats.h"
#include "zoo/zoo.h"

namespace {

struct GridPoint {
  double k2;
  double k3;
  cold::AbcSummary mean;  // mean metrics over a few seeds
};

}  // namespace

int main() {
  // 1. Metric ranges of the reference zoo.
  double cv_lo = 1e9, cv_hi = 0, deg_lo = 1e9, deg_hi = 0, gcc_hi = 0;
  for (const cold::ZooEntry& z : cold::synthetic_zoo()) {
    const cold::TopologyMetrics m = cold::compute_metrics(z.topology);
    cv_lo = std::min(cv_lo, m.degree_cv);
    cv_hi = std::max(cv_hi, m.degree_cv);
    deg_lo = std::min(deg_lo, m.avg_degree);
    deg_hi = std::max(deg_hi, m.avg_degree);
    gcc_hi = std::max(gcc_hi, m.global_clustering);
  }
  std::printf("Reference zoo ranges: avg degree [%.2f, %.2f], CVND "
              "[%.2f, %.2f], GCC up to %.2f\n\n",
              deg_lo, deg_hi, cv_lo, cv_hi, gcc_hi);

  // 2. COLD coverage over a (k2, k3) grid at n = 30.
  std::vector<GridPoint> grid;
  std::cout << "COLD grid (n = 30, 4 seeds per cell):\n";
  std::cout << "  k2        k3      avgdeg  diam   gcc    cvnd\n";
  for (double k2 : {2.5e-5, 2e-4, 1e-3, 3e-3}) {
    for (double k3 : {0.0, 3.0, 30.0, 300.0}) {
      cold::SynthesisConfig cfg;
      cfg.context.num_pops = 30;
      cfg.costs = cold::CostParams{10.0, 1.0, k2, k3};
      cfg.ga.population = 32;
      cfg.ga.generations = 24;
      const cold::Synthesizer synth(cfg);
      cold::AbcSummary mean;
      const std::size_t seeds = 4;
      for (std::size_t s = 0; s < seeds; ++s) {
        const cold::TopologyMetrics m =
            cold::compute_metrics(synth.synthesize(1 + s).network.topology);
        mean.avg_degree += m.avg_degree / seeds;
        mean.diameter += m.diameter / static_cast<double>(seeds);
        mean.clustering += m.global_clustering / seeds;
        mean.degree_cv += m.degree_cv / seeds;
      }
      grid.push_back(GridPoint{k2, k3, mean});
      std::printf("  %-8.2g  %-6g  %5.2f  %5.1f  %5.3f  %5.2f\n", k2, k3,
                  mean.avg_degree, mean.diameter, mean.clustering,
                  mean.degree_cv);
    }
  }

  // 3. Nearest grid cell for a few zoo archetypes.
  std::cout << "\nClosest COLD cell per zoo archetype (ABC distance):\n";
  for (const char* name :
       {"star-16", "ring-20", "mesh-12-18", "tree-binary-31"}) {
    const auto zoo = cold::synthetic_zoo();
    const auto it = std::find_if(zoo.begin(), zoo.end(), [&](const auto& z) {
      return z.name == name;
    });
    if (it == zoo.end()) continue;
    const cold::AbcSummary target =
        cold::AbcSummary::of(cold::compute_metrics(it->topology));
    const GridPoint* best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const GridPoint& cell : grid) {
      const double d = cold::abc_distance(target, cell.mean);
      if (d < best_dist) {
        best_dist = d;
        best = &cell;
      }
    }
    std::printf("  %-16s -> k2 = %-8.2g k3 = %-6g (distance %.2f)\n", name,
                best->k2, best->k3, best_dist);
  }
  std::cout << "\nExpected: hub-and-spoke archetypes map to high k3, meshes "
               "to high k2 /\nlow k3, trees to the low-k2 low-k3 corner — "
               "the §6 tunability story.\n";
  return 0;
}
