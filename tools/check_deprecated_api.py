#!/usr/bin/env python3
"""Fail when in-tree code calls an API deprecated by the sparse-first
topology engine rework.

Scans src/, tools/, bench/ and examples/ (NOT tests/ — the compat suites
deliberately keep one covered call site per deprecated entry point) for
member-call spellings of the deprecated surface:

    .row(          -> Topology::neighbors() / Topology::dense_row()
    .adjacency(    -> Topology::neighbors()
    .breakdown(    -> Evaluator::evaluate(g).breakdown
    .last_loads(   -> Evaluator::evaluate(g, {.want_loads = true}).loads

and for the dense n^2 load-accounting surface deprecated by the
matrix-free engine (free functions, matched as whole identifiers):

    route_loads_dense(           -> route_loads() with EdgeLoads
    route_loads_retained_dense(  -> route_loads_retained() with EdgeLoads
    accumulate_tree_loads_dense( -> accumulate_tree_loads() with EdgeLoads

The member-call patterns match calls only, so declarations/definitions
(`Evaluator::breakdown(...)`) and struct-field reads (`result.breakdown`)
do not trip the lint; the free-function patterns skip their own
declarations in net/routing.h via the allow marker there. Lines carrying
an explicit `// deprecated-api-allowed` marker are skipped.

Exit 0 when clean, 1 with one "file:line: pattern" diagnostic per hit.
Pure stdlib; no third-party imports.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tools", "bench", "examples")
EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")
ALLOW_MARKER = "deprecated-api-allowed"

PATTERNS = {
    r"\.row\(": "Topology::row — use neighbors() or dense_row()",
    r"\.adjacency\(": "Topology::adjacency — use neighbors()",
    r"\.breakdown\(": "Evaluator::breakdown — use evaluate(g).breakdown",
    r"\.last_loads\(":
        "Evaluator::last_loads — use evaluate(g, EvalRequest) loads",
    r"\broute_loads_dense\(":
        "route_loads_dense — use route_loads() with EdgeLoads",
    r"\broute_loads_retained_dense\(":
        "route_loads_retained_dense — use route_loads_retained() with "
        "EdgeLoads",
    r"\baccumulate_tree_loads_dense\(":
        "accumulate_tree_loads_dense — use accumulate_tree_loads() with "
        "EdgeLoads",
}


def scan_file(path):
    hits = []
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for lineno, line in enumerate(f, start=1):
            if ALLOW_MARKER in line:
                continue
            code = line.split("//", 1)[0]  # comments may name the old API
            for pattern, message in PATTERNS.items():
                if re.search(pattern, code):
                    hits.append((path, lineno, message))
    return hits


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    hits = []
    for top in SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, top)):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    hits.extend(scan_file(os.path.join(dirpath, name)))
    for path, lineno, message in hits:
        rel = os.path.relpath(path, root)
        print(f"{rel}:{lineno}: deprecated API call: {message}")
    if hits:
        print(f"{len(hits)} deprecated API call(s); migrate or mark the "
              f"line with // {ALLOW_MARKER}", file=sys.stderr)
        return 1
    print("deprecated-API lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
