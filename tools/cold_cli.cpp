// cold — command-line front end for the COLD topology synthesizer.
//
//   cold synth    [--pops N] [--k0 X --k2 X --k3 X] [--seed S]
//                 [--format dot|json|graphml] [--out FILE]
//   cold ensemble [--count N] [--pops N] [--k0/--k2/--k3] [--seed S]
//   cold metrics  --in FILE            (edge-list format, see io/edgelist.h)
//   cold estimate --in FILE [--draws N] [--epsilon E] [--seed S]
//   cold grow     --in FILE.json [--new-pops N] [--growth F] [--seed S]
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "abc/abc.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "growth/growth.h"
#include "io/dot.h"
#include "io/edgelist.h"
#include "io/graphml.h"
#include "io/json.h"

namespace {

using namespace cold;

struct Args {
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  double num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key + " expects a number");
    }
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + key);
    }
    key = key.substr(2);
    if (i + 1 >= argc) {
      throw std::invalid_argument("option --" + key + " needs a value");
    }
    args.options[key] = argv[++i];
  }
  return args;
}

void print_usage() {
  std::cerr <<
      "usage: cold <command> [options]\n"
      "  synth     synthesize one network\n"
      "            --pops N (30) --k0 X (10) --k2 X (4e-4) --k3 X (10)\n"
      "            --seed S (1) --population M (48) --generations T (40)\n"
      "            --overprovision O (1) --format dot|json|graphml (json)\n"
      "            --threads K (0 = all cores; output identical for any K)\n"
      "            --out FILE (stdout)\n"
      "  ensemble  synthesize many networks, print metric CIs\n"
      "            --count N (20) + synth options\n"
      "  metrics   print metrics of an edge-list file\n"
      "            --in FILE\n"
      "  estimate  ABC-estimate cost parameters from an edge-list file\n"
      "            --in FILE --draws N (100) --epsilon E (0.5) --seed S (1)\n"
      "  grow      grow a network saved as JSON\n"
      "            --in FILE.json --new-pops N (5) --growth F (1.2)\n"
      "            --decommission D (1.0) --seed S (1) --out FILE (stdout)\n";
}

SynthesisConfig config_from(const Args& args) {
  SynthesisConfig cfg;
  cfg.context.num_pops = static_cast<std::size_t>(args.num("pops", 30));
  cfg.costs.k0 = args.num("k0", 10.0);
  cfg.costs.k1 = args.num("k1", 1.0);
  cfg.costs.k2 = args.num("k2", 4e-4);
  cfg.costs.k3 = args.num("k3", 10.0);
  cfg.ga.population = static_cast<std::size_t>(args.num("population", 48));
  cfg.ga.generations = static_cast<std::size_t>(args.num("generations", 40));
  cfg.overprovision = args.num("overprovision", 1.0);
  // 0 = all hardware threads; any value yields bit-identical output.
  const auto threads = static_cast<std::size_t>(args.num("threads", 0));
  cfg.ga.parallel.num_threads = threads;
  cfg.parallel.num_threads = threads;
  return cfg;
}

void write_output(const Network& net, const Args& args) {
  const std::string format = args.get("format", "json");
  std::ostringstream body;
  if (format == "json") {
    write_network_json(body, net);
  } else if (format == "dot") {
    write_dot(body, net);
  } else if (format == "graphml") {
    write_graphml(body, net);
  } else {
    throw std::invalid_argument("unknown --format: " + format);
  }
  if (args.has("out")) {
    std::ofstream file(args.get("out", ""));
    if (!file) throw std::runtime_error("cannot open output file");
    file << body.str();
    std::cerr << "wrote " << args.get("out", "") << "\n";
  } else {
    std::cout << body.str();
  }
}

void print_metrics(const Topology& g) {
  const TopologyMetrics m = compute_metrics(g);
  const ResilienceReport r = analyze_resilience(g);
  std::cout << "nodes:              " << m.nodes << "\n"
            << "links:              " << m.edges << "\n"
            << "connected:          " << (m.connected ? "yes" : "no") << "\n"
            << "avg degree:         " << m.avg_degree << "\n"
            << "degree CV (CVND):   " << m.degree_cv << "\n"
            << "diameter (hops):    " << m.diameter << "\n"
            << "avg path length:    " << m.avg_path_length << "\n"
            << "global clustering:  " << m.global_clustering << "\n"
            << "assortativity:      " << m.assortativity << "\n"
            << "core PoPs:          " << m.hubs << "\n"
            << "leaf PoPs:          " << m.leaves << "\n"
            << "bridges:            " << r.bridges << "\n"
            << "articulation PoPs:  " << r.articulation_points << "\n"
            << "edge connectivity:  " << r.edge_connectivity << "\n";
}

int cmd_synth(const Args& args) {
  const Synthesizer synth(config_from(args));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const SynthesisResult r = synth.synthesize(seed);
  std::cerr << "cost " << r.cost.total() << " ("
            << synth.config().costs.to_string() << "), "
            << r.network.num_links() << " links\n";
  write_output(r.network, args);
  return 0;
}

int cmd_ensemble(const Args& args) {
  const Synthesizer synth(config_from(args));
  const auto count = static_cast<std::size_t>(args.num("count", 20));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const EnsembleResult e = generate_ensemble(synth, count, seed);
  auto show = [](const char* name, const ConfidenceInterval& ci) {
    std::cout << name << ": " << ci.mean << "  [" << ci.lo << ", " << ci.hi
              << "]\n";
  };
  std::cout << "ensemble of " << count << " networks (95% bootstrap CIs)\n";
  show("avg degree   ", e.stats.avg_degree);
  show("diameter     ", e.stats.diameter);
  show("clustering   ", e.stats.clustering);
  show("CVND         ", e.stats.degree_cv);
  show("hub PoPs     ", e.stats.hubs);
  show("assortativity", e.stats.assortativity);
  std::cout << "all distinct: " << (e.all_distinct ? "yes" : "no") << "\n";
  return 0;
}

int cmd_metrics(const Args& args) {
  if (!args.has("in")) throw std::invalid_argument("metrics needs --in FILE");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const EdgeListData data = read_edge_list(file);
  print_metrics(data.topology);
  return 0;
}

int cmd_estimate(const Args& args) {
  if (!args.has("in")) throw std::invalid_argument("estimate needs --in FILE");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const EdgeListData data = read_edge_list(file);

  AbcConfig cfg;
  cfg.num_draws = static_cast<std::size_t>(args.num("draws", 100));
  cfg.epsilon = args.num("epsilon", 0.5);
  cfg.ga.population = 20;
  cfg.ga.generations = 15;
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const AbcResult r = abc_estimate(data.topology, cfg, seed);
  std::cout << "draws: " << r.draws.size()
            << ", accepted: " << r.accepted.size() << " ("
            << 100.0 * r.acceptance_rate << "%)\n";
  if (!r.accepted.empty()) {
    std::cout << "posterior mean: " << r.posterior_mean.to_string() << "\n";
  } else {
    std::cout << "no accepted draws; widen --epsilon or --draws\n";
  }
  return 0;
}

int cmd_grow(const Args& args) {
  if (!args.has("in")) throw std::invalid_argument("grow needs --in FILE.json");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const Network base = read_network_json(file);

  GrowthConfig cfg;
  cfg.new_pops = static_cast<std::size_t>(args.num("new-pops", 5));
  cfg.population_growth = args.num("growth", 1.2);
  cfg.decommission_factor = args.num("decommission", 1.0);
  cfg.costs.k0 = args.num("k0", 10.0);
  cfg.costs.k2 = args.num("k2", 4e-4);
  cfg.costs.k3 = args.num("k3", 10.0);
  cfg.ga.population = static_cast<std::size_t>(args.num("population", 48));
  cfg.ga.generations = static_cast<std::size_t>(args.num("generations", 40));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const GrowthResult r = grow_network(base, cfg, seed);
  std::cerr << "grew " << base.num_pops() << " -> " << r.network.num_pops()
            << " PoPs; kept " << r.links_kept << ", removed "
            << r.links_removed << ", added " << r.links_added << " links\n";
  write_output(r.network, args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (command == "synth") return cmd_synth(args);
    if (command == "ensemble") return cmd_ensemble(args);
    if (command == "metrics") return cmd_metrics(args);
    if (command == "estimate") return cmd_estimate(args);
    if (command == "grow") return cmd_grow(args);
    std::cerr << "unknown command: " << command << "\n";
    print_usage();
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    print_usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
