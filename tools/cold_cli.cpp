// cold — command-line front end for the COLD topology synthesizer.
//
//   cold synth    [--pops N] [--k0 X --k2 X --k3 X] [--seed S]
//                 [--traffic-topk K] [--format dot|json|graphml] [--out FILE]
//                 [--report FILE] [--progress] [--max-seconds T]
//                 [--max-evals N] [--eval-cache] [--eval-cache-size N]
//                 [--shared-cache] [--dedup] [--dijkstra auto|dense|sparse]
//                 [--dsssp on|off|auto] [--affinity on|off]
//                 [--multipath off|ecmp|wcmp] [--max-util-weight X]
//                 [--oversub-weight X]
//   cold ensemble [--count N] [--retain-runs on|off|auto] [--exemplars N]
//                 + synth options
//   cold metrics  --in FILE [--format text|json] [--out FILE]
//   cold estimate --in FILE [--draws N] [--epsilon E] [--seed S]
//                 [--format text|json] [--out FILE]
//   cold grow     --in FILE.json [--new-pops N] [--growth F] [--seed S]
//   cold report-diff <a.json> <b.json> [--format text|json] [--out FILE]
//
// Every subcommand accepts --report FILE (a JSON run report, see
// telemetry/report.h); the long-running ones also take --progress (live
// one-line updates on stderr) and --max-seconds / --max-evals budgets that
// stop the run early at a generation boundary, still producing a valid
// network and report. Unknown options are rejected with the valid set.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure. report-diff
// additionally exits 1 when the two reports diverge in any timing-free
// (logical) field — CI uses it as an exactness gate.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "abc/abc.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "geom/distance.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "growth/growth.h"
#include "io/dot.h"
#include "io/edgelist.h"
#include "io/graphml.h"
#include "io/json.h"
#include "io/json_value.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "telemetry/sinks.h"
#include "util/cli_options.h"

namespace {

using namespace cold;

// ---------------------------------------------------------------------------
// Option groups shared between subcommands.
// ---------------------------------------------------------------------------

const std::vector<OptionSpec> kCostOpts = {
    {"k0", true, "X (10)"},
    {"k1", true, "X (1)"},
    {"k2", true, "X (4e-4)"},
    {"k3", true, "X (10)"},
};

const std::vector<OptionSpec> kGaOpts = {
    {"population", true, "M (48)"},
    {"generations", true, "T (40)"},
    {"threads", true, "K (0 = all cores)"},
};

// Evaluation-engine knobs (cost/cost_cache.h). Exact: any combination
// produces bit-identical networks; these trade memory for speed.
const std::vector<OptionSpec> kEngineOpts = {
    {"eval-cache", false, "memoize cost evaluations"},
    {"eval-cache-size", true, "N entries (16384)"},
    {"shared-cache", false, "share one cache across workers (implies "
                            "--eval-cache)"},
    {"dedup", false, "score each distinct GA offspring once"},
    {"dijkstra", true, "auto|dense|sparse (auto)"},
    {"dsssp", true, "on|off|auto (off): delta-evaluate near-parent "
                    "offspring"},
    {"affinity", true, "on|off (on): route offspring to the worker "
                       "retaining their parent's routing state"},
    {"dense-threshold", true,
     "N (512): largest n with dense adjacency/distance backends; 0 forces "
     "the matrix-free path (exact: results are bit-identical either way)"},
};

const std::vector<OptionSpec> kOutputOpts = {
    {"format", true, "dot|json|graphml (json)"},
    {"out", true, "FILE (stdout)"},
};

const std::vector<OptionSpec> kReportOpt = {
    {"report", true, "FILE (JSON run report)"},
};

const std::vector<OptionSpec> kRunControlOpts = {
    {"progress", false, "live progress on stderr"},
    {"max-seconds", true, "T (0 = unlimited)"},
    {"max-evals", true, "N (0 = unlimited)"},
};

std::vector<OptionSpec> synth_specs() {
  return concat_specs({{{"pops", true, "N (30)"},
                        {"seed", true, "S (1)"},
                        {"overprovision", true, "O (1)"},
                        {"traffic-topk", true,
                         "K (0 = exact): keep each PoP's K largest demands, "
                         "symmetrized and renormalized"},
                        {"objective", true,
                         "cost|resilient (cost): resilient adds a weighted "
                         "survivability penalty from delta-powered failure "
                         "sweeps"},
                        {"resilience-weight", true,
                         "L (1): weight of the survivability penalty "
                         "(resilient objective; 0 reproduces plain costs)"},
                        {"failure-scenarios", true,
                         "single|double-sampled (single): every single-link "
                         "failure, plus deterministically sampled two-link "
                         "failures"},
                        {"multipath", true,
                         "off|ecmp|wcmp (off): split demands across all "
                         "equal-cost shortest paths (wcmp weights branches "
                         "by downstream degree)"},
                        {"max-util-weight", true,
                         "X (0): objective weight on max link utilization "
                         "(needs --multipath ecmp|wcmp)"},
                        {"oversub-weight", true,
                         "X (0): objective weight on summed link "
                         "oversubscription (needs --multipath ecmp|wcmp)"}},
                       kCostOpts,
                       kGaOpts,
                       kEngineOpts,
                       kOutputOpts,
                       kReportOpt,
                       kRunControlOpts});
}

CliOptions spec_for(const std::string& command) {
  if (command == "synth") return {"synth", synth_specs()};
  if (command == "ensemble") {
    return {"ensemble",
            concat_specs({{{"count", true, "N (20)"},
                           {"retain-runs", true, "on|off|auto (auto)"},
                           {"exemplars", true,
                            "N (0): keep a deterministic reservoir sample of "
                            "N runs (streams the ensemble)"}},
                          synth_specs()})};
  }
  if (command == "metrics") {
    return {"metrics", concat_specs({{{"in", true, "FILE (edge list)"},
                                      {"format", true, "text|json (text)"},
                                      {"out", true, "FILE (stdout)"}},
                                     kReportOpt})};
  }
  if (command == "estimate") {
    return {"estimate", concat_specs({{{"in", true, "FILE (edge list)"},
                                       {"draws", true, "N (100)"},
                                       {"epsilon", true, "E (0.5)"},
                                       {"seed", true, "S (1)"},
                                       {"format", true, "text|json (text)"},
                                       {"out", true, "FILE (stdout)"}},
                                      kReportOpt})};
  }
  if (command == "grow") {
    return {"grow", concat_specs({{{"in", true, "FILE.json"},
                                   {"new-pops", true, "N (5)"},
                                   {"growth", true, "F (1.2)"},
                                   {"decommission", true, "D (1.0)"},
                                   {"seed", true, "S (1)"}},
                                  kCostOpts, kGaOpts, kEngineOpts, kOutputOpts,
                                  kReportOpt, kRunControlOpts})};
  }
  throw std::invalid_argument("unknown command: " + command);
}

void print_usage() {
  std::cerr <<
      "usage: cold <command> [options]\n"
      "  synth     synthesize one network\n"
      "            --pops N (30) --k0 X (10) --k2 X (4e-4) --k3 X (10)\n"
      "            --seed S (1) --population M (48) --generations T (40)\n"
      "            --overprovision O (1) --format dot|json|graphml (json)\n"
      "            --threads K (0 = all cores; output identical for any K)\n"
      "            --traffic-topk K (0 = exact: keep each PoP's K largest\n"
      "            demands, symmetrized and renormalized — approximate,\n"
      "            recorded in the run report)\n"
      "            --objective cost|resilient (cost): resilient optimizes\n"
      "            cost + L * survivability penalty, scored by\n"
      "            delta-powered failure sweeps (--resilience-weight L (1),\n"
      "            --failure-scenarios single|double-sampled (single));\n"
      "            not available for grow\n"
      "            --multipath off|ecmp|wcmp (off): split each demand across\n"
      "            all equal-cost shortest paths instead of one tree path\n"
      "            (wcmp weights branches by downstream degree); exact on\n"
      "            unique-shortest-path topologies (bit-identical networks);\n"
      "            --max-util-weight X (0) and --oversub-weight X (0) add\n"
      "            utilization terms to the objective; mutually exclusive\n"
      "            with --objective resilient; not available for grow\n"
      "            --out FILE (stdout)\n"
      "  ensemble  synthesize many networks, print metric CIs\n"
      "            --count N (20) --retain-runs on|off|auto (auto: retain\n"
      "            up to 1024 runs, stream aggregates above — memory stays\n"
      "            flat for any count) --exemplars N (0: keep a\n"
      "            deterministic reservoir of N full runs while streaming;\n"
      "            seeds land in the report's ensemble_exemplars block)\n"
      "            + synth options\n"
      "  metrics   print metrics of an edge-list file\n"
      "            --in FILE --format text|json (text) --out FILE\n"
      "  estimate  ABC-estimate cost parameters from an edge-list file\n"
      "            --in FILE --draws N (100) --epsilon E (0.5) --seed S (1)\n"
      "            --format text|json (text) --out FILE\n"
      "  grow      grow a network saved as JSON\n"
      "            --in FILE.json --new-pops N (5) --growth F (1.2)\n"
      "            --decommission D (1.0) --seed S (1) --out FILE (stdout)\n"
      "  report-diff  compare two JSON run reports\n"
      "            cold report-diff <a.json> <b.json>\n"
      "            --format text|json (text) --out FILE (stdout)\n"
      "            exit 1 when any timing-free field diverges\n"
      "  telemetry (all commands): --report FILE writes a JSON run report;\n"
      "            synth/ensemble/grow also take --progress, --max-seconds T\n"
      "            and --max-evals N (stop budgets; partial results stay\n"
      "            valid)\n"
      "  engine    (synth/ensemble/grow): --eval-cache memoizes cost\n"
      "            evaluations, --eval-cache-size N bounds it (16384),\n"
      "            --shared-cache shares one cache across worker threads\n"
      "            (implies --eval-cache), --dedup scores each distinct GA\n"
      "            offspring once per generation, --dijkstra\n"
      "            auto|dense|sparse picks the shortest-path solver, and\n"
      "            --dsssp on|off|auto re-routes near-parent offspring\n"
      "            incrementally (auto enables it above 16 PoPs), and\n"
      "            --affinity on|off (on) routes offspring to the worker\n"
      "            retaining their parent's routing state (work-stealing\n"
      "            keeps threads busy), and --dense-threshold N (512) caps\n"
      "            the n below which dense adjacency/distance backends\n"
      "            materialize (0 forces the matrix-free path); all are\n"
      "            exact and change performance only\n";
}

// ---------------------------------------------------------------------------
// Telemetry wiring: sinks + stop condition owned for the command's lifetime.
// ---------------------------------------------------------------------------

class CliTelemetry {
 public:
  explicit CliTelemetry(const CliOptions& args) {
    if (args.has("progress")) {
      progress_.emplace(std::cerr);
      observer_.add(&*progress_);
      any_sink_ = true;
    }
    report_path_ = args.get("report", "");
    if (!report_path_.empty()) {
      observer_.add(&report_);
      any_sink_ = true;
    }
    stop_.max_seconds = args.num("max-seconds", 0.0);
    stop_.max_evaluations = args.uint("max-evals", 0);
    want_stop_ = stop_.max_seconds > 0 || stop_.max_evaluations > 0;
  }

  RunObserver* observer() { return any_sink_ ? &observer_ : nullptr; }
  StopCondition* stop() { return want_stop_ ? &stop_ : nullptr; }
  RunReport& report() { return report_.report(); }

  /// Writes the report file if --report was given. Call after the run (the
  /// report is valid even when a stop budget fired mid-run).
  void finish() const {
    if (report_path_.empty()) return;
    std::ofstream file(report_path_);
    if (!file) {
      throw std::runtime_error("cannot open report file: " + report_path_);
    }
    report_.write(file, /*include_timing=*/true);
    std::cerr << "wrote report " << report_path_ << "\n";
  }

 private:
  std::optional<ProgressSink> progress_;
  JsonReportSink report_;
  MultiObserver observer_;
  StopCondition stop_;
  std::string report_path_;
  bool any_sink_ = false;
  bool want_stop_ = false;
};

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

EvalEngineConfig engine_from(const CliOptions& args) {
  // Process-wide backend switch, applied before any context or topology is
  // built. Both thresholds move together so "matrix-free" means the whole
  // engine: sparse adjacency AND on-demand distances.
  if (args.has("dense-threshold")) {
    const std::size_t threshold = args.uint("dense-threshold", 512);
    Topology::set_dense_auto_threshold(threshold);
    DistanceProvider::set_dense_auto_threshold(threshold);
  }
  EvalEngineConfig engine;
  engine.cache.enabled = args.has("eval-cache") || args.has("shared-cache");
  engine.cache.shared = args.has("shared-cache");
  engine.cache.capacity =
      args.uint("eval-cache-size", engine.cache.capacity);
  const std::string algo = args.get("dijkstra", "auto");
  if (algo == "auto") {
    engine.sp_algorithm = SpAlgorithm::kAuto;
  } else if (algo == "dense") {
    engine.sp_algorithm = SpAlgorithm::kDense;
  } else if (algo == "sparse") {
    engine.sp_algorithm = SpAlgorithm::kSparse;
  } else {
    throw std::invalid_argument("unknown --dijkstra: " + algo +
                                " (expected auto, dense or sparse)");
  }
  const std::string dsssp = args.get("dsssp", "off");
  if (dsssp == "on") {
    engine.delta.mode = DsspMode::kOn;
  } else if (dsssp == "off") {
    engine.delta.mode = DsspMode::kOff;
  } else if (dsssp == "auto") {
    engine.delta.mode = DsspMode::kAuto;
  } else {
    throw std::invalid_argument("unknown --dsssp: " + dsssp +
                                " (expected on, off or auto)");
  }
  return engine;
}

/// GaConfig::affinity from --affinity on|off (default on). Exact either
/// way; off pins the scorer to plain dynamic scheduling.
bool affinity_from(const CliOptions& args) {
  const std::string affinity = args.get("affinity", "on");
  if (affinity == "on") return true;
  if (affinity == "off") return false;
  throw std::invalid_argument("unknown --affinity: " + affinity +
                              " (expected on or off)");
}

SynthesisConfig config_from(const CliOptions& args) {
  SynthesisConfig cfg;
  cfg.context.num_pops = args.uint("pops", 30);
  cfg.costs.k0 = args.num("k0", 10.0);
  cfg.costs.k1 = args.num("k1", 1.0);
  cfg.costs.k2 = args.num("k2", 4e-4);
  cfg.costs.k3 = args.num("k3", 10.0);
  cfg.ga.population = args.uint("population", 48);
  cfg.ga.generations = args.uint("generations", 40);
  cfg.ga.dedup = args.has("dedup");
  cfg.ga.affinity = affinity_from(args);
  cfg.overprovision = args.num("overprovision", 1.0);
  cfg.context.gravity.topk = args.uint("traffic-topk", 0);
  cfg.engine = engine_from(args);
  const std::string objective = args.get("objective", "cost");
  if (objective == "resilient") {
    cfg.engine.resilience.enabled = true;
    cfg.engine.resilience.weight = args.num("resilience-weight", 1.0);
    const std::string scenarios = args.get("failure-scenarios", "single");
    if (scenarios == "single") {
      cfg.engine.resilience.scenarios = FailureScenarioSet::kSingleLink;
    } else if (scenarios == "double-sampled") {
      cfg.engine.resilience.scenarios = FailureScenarioSet::kDoubleSampled;
    } else {
      throw std::invalid_argument(
          "unknown --failure-scenarios: " + scenarios +
          " (expected single or double-sampled)");
    }
  } else if (objective == "cost") {
    if (args.has("resilience-weight") || args.has("failure-scenarios")) {
      throw std::invalid_argument(
          "--resilience-weight/--failure-scenarios need --objective "
          "resilient");
    }
  } else {
    throw std::invalid_argument("unknown --objective: " + objective +
                                " (expected cost or resilient)");
  }
  const std::string multipath = args.get("multipath", "off");
  if (multipath == "ecmp") {
    cfg.engine.multipath.mode = MultipathMode::kEcmp;
  } else if (multipath == "wcmp") {
    cfg.engine.multipath.mode = MultipathMode::kWcmp;
  } else if (multipath == "off") {
    if (args.has("max-util-weight") || args.has("oversub-weight")) {
      throw std::invalid_argument(
          "--max-util-weight/--oversub-weight need --multipath ecmp|wcmp");
    }
  } else {
    throw std::invalid_argument("unknown --multipath: " + multipath +
                                " (expected off, ecmp or wcmp)");
  }
  if (cfg.engine.multipath.enabled()) {
    cfg.engine.multipath.max_util_weight = args.num("max-util-weight", 0.0);
    cfg.engine.multipath.oversub_weight = args.num("oversub-weight", 0.0);
  }
  // 0 = all hardware threads; any value yields bit-identical output.
  const std::size_t threads = args.uint("threads", 0);
  cfg.ga.parallel.num_threads = threads;
  cfg.parallel.num_threads = threads;
  return cfg;
}

/// Routes `body` to --out (if given) or stdout.
void emit(const std::string& body, const CliOptions& args) {
  if (args.has("out")) {
    const std::string path = args.get("out", "");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot open output file: " + path);
    file << body;
    std::cerr << "wrote " << path << "\n";
  } else {
    std::cout << body;
  }
}

void write_network_output(const Network& net, const CliOptions& args) {
  const std::string format = args.get("format", "json");
  std::ostringstream body;
  if (format == "json") {
    write_network_json(body, net);
  } else if (format == "dot") {
    write_dot(body, net);
  } else if (format == "graphml") {
    write_graphml(body, net);
  } else {
    throw std::invalid_argument("unknown --format: " + format +
                                " (expected dot, json or graphml)");
  }
  emit(body.str(), args);
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

int cmd_synth(const CliOptions& args) {
  CliTelemetry telemetry(args);
  SynthesisConfig cfg = config_from(args);
  cfg.observer = telemetry.observer();
  cfg.stop = telemetry.stop();
  const Synthesizer synth(cfg);
  const std::uint64_t seed = args.uint("seed", 1);
  const SynthesisResult r = synth.synthesize(seed);
  std::cerr << "cost " << r.cost.total() << " ("
            << synth.config().costs.to_string() << "), "
            << r.network.num_links() << " links";
  if (r.cache.lookups() > 0) {
    std::cerr << ", cache " << r.cache.hits << "/" << r.cache.lookups()
              << " hits";
  }
  if (r.ga.stopped_early) {
    std::cerr << " [stopped early: " << to_string(r.ga.stop_reason) << "]";
  }
  std::cerr << "\n";
  write_network_output(r.network, args);
  telemetry.finish();
  return 0;
}

int cmd_ensemble(const CliOptions& args) {
  CliTelemetry telemetry(args);
  SynthesisConfig cfg = config_from(args);
  cfg.observer = telemetry.observer();
  cfg.stop = telemetry.stop();
  const Synthesizer synth(cfg);
  EnsembleOptions opts;
  opts.count = args.uint("count", 20);
  opts.base_seed = args.uint("seed", 1);
  const std::string retain = args.get("retain-runs", "auto");
  if (retain == "on") {
    opts.retain = RetainMode::kRetainAll;
  } else if (retain == "off") {
    opts.retain = RetainMode::kStreamed;
  } else if (retain == "auto") {
    opts.retain = RetainMode::kAuto;
  } else {
    throw std::invalid_argument("--retain-runs must be on, off or auto");
  }
  opts.reservoir = args.uint("exemplars", 0);
  if (opts.reservoir > 0) {
    if (opts.retain == RetainMode::kRetainAll) {
      throw std::invalid_argument(
          "--exemplars needs a streamed ensemble (drop --retain-runs on)");
    }
    // The reservoir only exists in streamed mode; make --exemplars N
    // sufficient on its own.
    opts.retain = RetainMode::kStreamed;
  }
  const EnsembleResult e = generate_ensemble(synth, opts);
  auto show = [](const char* name, const ConfidenceInterval& ci) {
    std::cout << name << ": " << ci.mean << "  [" << ci.lo << ", " << ci.hi
              << "]\n";
  };
  std::cout << "ensemble of " << e.num_runs() << " / " << opts.count
            << " networks ("
            << (e.acc.retains_runs() ? "95% bootstrap CIs"
                                     : "streamed; 95% normal CIs")
            << ")\n";
  if (e.stopped_early) {
    std::cout << "stopped early: " << to_string(e.stop_reason) << "\n";
  }
  show("avg degree   ", e.stats.avg_degree);
  show("diameter     ", e.stats.diameter);
  show("clustering   ", e.stats.clustering);
  show("CVND         ", e.stats.degree_cv);
  show("hub PoPs     ", e.stats.hubs);
  show("assortativity", e.stats.assortativity);
  std::cout << "all distinct: " << (e.all_distinct ? "yes" : "no")
            << (e.pairwise_checked ? "" : " (hash-based)") << "\n";
  const std::vector<EnsembleExemplar> exemplars = e.acc.exemplars();
  if (!exemplars.empty()) {
    std::cout << "exemplars (" << exemplars.size() << " of " << e.num_runs()
              << "):";
    for (const EnsembleExemplar& x : exemplars) {
      std::cout << " seed=" << x.seed << " cost=" << x.best_cost;
    }
    std::cout << "\n";
  }
  telemetry.finish();
  return 0;
}

JsonValue metrics_json(const TopologyMetrics& m, const ResilienceReport& r) {
  JsonObject o;
  o["nodes"] = m.nodes;
  o["links"] = m.edges;
  o["connected"] = m.connected;
  o["avg_degree"] = m.avg_degree;
  o["degree_cv"] = m.degree_cv;
  o["diameter"] = m.diameter;
  o["avg_path_length"] = m.avg_path_length;
  o["global_clustering"] = m.global_clustering;
  o["assortativity"] = m.assortativity;
  o["hubs"] = m.hubs;
  o["leaves"] = m.leaves;
  o["bridges"] = r.bridges;
  o["articulation_points"] = r.articulation_points;
  o["edge_connectivity"] = r.edge_connectivity;
  return JsonValue(std::move(o));
}

std::string metrics_text(const TopologyMetrics& m, const ResilienceReport& r) {
  std::ostringstream os;
  os << "nodes:              " << m.nodes << "\n"
     << "links:              " << m.edges << "\n"
     << "connected:          " << (m.connected ? "yes" : "no") << "\n"
     << "avg degree:         " << m.avg_degree << "\n"
     << "degree CV (CVND):   " << m.degree_cv << "\n"
     << "diameter (hops):    " << m.diameter << "\n"
     << "avg path length:    " << m.avg_path_length << "\n"
     << "global clustering:  " << m.global_clustering << "\n"
     << "assortativity:      " << m.assortativity << "\n"
     << "core PoPs:          " << m.hubs << "\n"
     << "leaf PoPs:          " << m.leaves << "\n"
     << "bridges:            " << r.bridges << "\n"
     << "articulation PoPs:  " << r.articulation_points << "\n"
     << "edge connectivity:  " << r.edge_connectivity << "\n";
  return os.str();
}

/// Minimal hand-built report for the analysis commands (no observed run,
/// but --report still yields a valid, schema-conforming artifact).
void write_analysis_report(const CliOptions& args, std::uint64_t seed,
                           std::size_t num_pops, double best_cost,
                           std::size_t evaluations) {
  if (!args.has("report")) return;
  RunReport report;
  report.seed = seed;
  report.num_pops = num_pops;
  report.best_cost = best_cost;
  report.evaluations = evaluations;
  const std::string path = args.get("report", "");
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open report file: " + path);
  write_run_report_json(file, report, /*include_timing=*/false);
  std::cerr << "wrote report " << path << "\n";
}

int cmd_metrics(const CliOptions& args) {
  if (!args.has("in")) throw std::invalid_argument("metrics needs --in FILE");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const EdgeListData data = read_edge_list(file);
  const TopologyMetrics m = compute_metrics(data.topology);
  const ResilienceReport r = analyze_resilience(data.topology);

  const std::string format = args.get("format", "text");
  if (format == "json") {
    emit(json_to_string(metrics_json(m, r)) + "\n", args);
  } else if (format == "text") {
    emit(metrics_text(m, r), args);
  } else {
    throw std::invalid_argument("unknown --format: " + format +
                                " (expected text or json)");
  }
  write_analysis_report(args, /*seed=*/0, m.nodes, /*best_cost=*/0.0,
                        /*evaluations=*/0);
  return 0;
}

int cmd_estimate(const CliOptions& args) {
  if (!args.has("in")) throw std::invalid_argument("estimate needs --in FILE");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const EdgeListData data = read_edge_list(file);

  AbcConfig cfg;
  cfg.num_draws = args.uint("draws", 100);
  cfg.epsilon = args.num("epsilon", 0.5);
  cfg.ga.population = 20;
  cfg.ga.generations = 15;
  const std::uint64_t seed = args.uint("seed", 1);
  const AbcResult r = abc_estimate(data.topology, cfg, seed);

  const std::string format = args.get("format", "text");
  if (format == "json") {
    JsonObject o;
    o["draws"] = r.draws.size();
    o["accepted"] = r.accepted.size();
    o["acceptance_rate"] = r.acceptance_rate;
    if (!r.accepted.empty()) {
      JsonObject mean;
      mean["k0"] = r.posterior_mean.k0;
      mean["k1"] = r.posterior_mean.k1;
      mean["k2"] = r.posterior_mean.k2;
      mean["k3"] = r.posterior_mean.k3;
      o["posterior_mean"] = JsonValue(std::move(mean));
    }
    emit(json_to_string(JsonValue(std::move(o))) + "\n", args);
  } else if (format == "text") {
    std::ostringstream os;
    os << "draws: " << r.draws.size() << ", accepted: " << r.accepted.size()
       << " (" << 100.0 * r.acceptance_rate << "%)\n";
    if (!r.accepted.empty()) {
      os << "posterior mean: " << r.posterior_mean.to_string() << "\n";
    } else {
      os << "no accepted draws; widen --epsilon or --draws\n";
    }
    emit(os.str(), args);
  } else {
    throw std::invalid_argument("unknown --format: " + format +
                                " (expected text or json)");
  }
  write_analysis_report(args, seed, data.topology.num_nodes(),
                        /*best_cost=*/0.0, /*evaluations=*/r.draws.size());
  return 0;
}

int cmd_report_diff(int argc, const char* const* argv) {
  // Two positional report paths come right after the subcommand; the strict
  // option parser handles the rest.
  if (argc < 4 || std::string(argv[2]).rfind("--", 0) == 0 ||
      std::string(argv[3]).rfind("--", 0) == 0) {
    throw std::invalid_argument(
        "report-diff needs two report paths: "
        "cold report-diff <a.json> <b.json> [--format text|json] "
        "[--out FILE]");
  }
  CliOptions args{"report-diff",
                  {{"format", true, "text|json (text)"},
                   {"out", true, "FILE (stdout)"}}};
  args.parse(argc, argv, 4);

  const auto load = [](const std::string& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open report file: " + path);
    std::ostringstream buf;
    buf << file.rdbuf();
    return run_report_from_json(buf.str());
  };
  const ReportDiff diff = diff_run_reports(load(argv[2]), load(argv[3]));

  const std::string format = args.get("format", "text");
  std::ostringstream body;
  if (format == "json") {
    write_report_diff_json(body, diff);
  } else if (format == "text") {
    write_report_diff_text(body, diff);
  } else {
    throw std::invalid_argument("unknown --format: " + format +
                                " (expected text or json)");
  }
  emit(body.str(), args);
  return diff.logically_equal() ? 0 : 1;
}

int cmd_grow(const CliOptions& args) {
  if (!args.has("in")) throw std::invalid_argument("grow needs --in FILE.json");
  std::ifstream file(args.get("in", ""));
  if (!file) throw std::runtime_error("cannot open input file");
  const Network base = read_network_json(file);

  CliTelemetry telemetry(args);
  GrowthConfig cfg;
  cfg.new_pops = args.uint("new-pops", 5);
  cfg.population_growth = args.num("growth", 1.2);
  cfg.decommission_factor = args.num("decommission", 1.0);
  cfg.costs.k0 = args.num("k0", 10.0);
  cfg.costs.k1 = args.num("k1", 1.0);
  cfg.costs.k2 = args.num("k2", 4e-4);
  cfg.costs.k3 = args.num("k3", 10.0);
  cfg.ga.population = args.uint("population", 48);
  cfg.ga.generations = args.uint("generations", 40);
  cfg.ga.dedup = args.has("dedup");
  cfg.ga.affinity = affinity_from(args);
  cfg.ga.parallel.num_threads = args.uint("threads", 0);
  cfg.engine = engine_from(args);
  cfg.observer = telemetry.observer();
  cfg.stop = telemetry.stop();
  const std::uint64_t seed = args.uint("seed", 1);
  const GrowthResult r = grow_network(base, cfg, seed);
  std::cerr << "grew " << base.num_pops() << " -> " << r.network.num_pops()
            << " PoPs; kept " << r.links_kept << ", removed "
            << r.links_removed << ", added " << r.links_added << " links\n";
  write_network_output(r.network, args);
  telemetry.finish();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "report-diff") return cmd_report_diff(argc, argv);
    CliOptions args = spec_for(command);
    args.parse(argc, argv, 2);
    if (command == "synth") return cmd_synth(args);
    if (command == "ensemble") return cmd_ensemble(args);
    if (command == "metrics") return cmd_metrics(args);
    if (command == "estimate") return cmd_estimate(args);
    return cmd_grow(args);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    print_usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
