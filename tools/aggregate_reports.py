#!/usr/bin/env python3
"""Fold N JSON reports into per-metric trend lines.

Accepts any mix of the repo's JSON artifacts — bench artifacts
(BENCH_*.json), run reports from `cold synth --report`, and
check_regression.py regression reports — and aggregates every numeric
leaf across them:

    python3 tools/aggregate_reports.py run1/BENCH_evaluator.json \
        run2/BENCH_evaluator.json --out trends.json

Each file is flattened to dotted metric paths ("cache.speedup",
"sparse_vs_dense[0].evals_per_sec_sparse", ...), prefixed with a label
derived from the report itself ("bench" field, then "schema", then the
filename stem) so different report kinds never collide. Booleans count
as 1/0 — gate outcomes become trend lines too. Inputs are processed in
the order given (pass them oldest first for meaningful first/last
columns); files that are missing or fail to parse are reported and
skipped rather than aborting the fold, so a nightly sweep over
partially-expired CI artifacts still produces a summary.

Output schema (stdout always gets a fixed-width table):

    {
      "schema": "cold-report-trends",
      "version": 1,
      "sources": [{"path": ..., "label": ..., "ok": true|false}, ...],
      "metrics": {
        "<label>.<dotted.path>": {
          "count": n, "first": x, "last": x,
          "min": x, "max": x, "mean": x,
          "values": [x, ...]          # source order
        }, ...
      }
    }

Pure stdlib; exits 0 when at least one source parsed, 2 when none did.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def flatten(value, prefix, out):
    """Collect numeric leaves of `value` into out[dotted_path]."""
    if isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:  # insertion order: stable for a fixed writer
            sub = f"{prefix}.{key}" if prefix else str(key)
            flatten(value[key], sub, out)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            flatten(item, f"{prefix}[{i}]", out)
    # strings and nulls carry no trend information


def label_for(doc, path):
    """Metric-name prefix for one report: its self-declared kind."""
    if isinstance(doc, dict):
        for key in ("bench", "schema"):
            if isinstance(doc.get(key), str) and doc[key]:
                return doc[key]
    return Path(path).stem


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="aggregate JSON run/bench reports into metric trends")
    parser.add_argument("reports", nargs="+",
                        help="JSON report files, oldest first")
    parser.add_argument("--out", help="write the trends JSON here")
    args = parser.parse_args(argv)

    sources = []
    metrics = {}  # name -> list of values in source order
    for path in args.reports:
        entry = {"path": path, "label": "", "ok": False}
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"skip {path}: {err}", file=sys.stderr)
            sources.append(entry)
            continue
        entry["label"] = label_for(doc, path)
        entry["ok"] = True
        sources.append(entry)
        flat = {}
        flatten(doc, "", flat)
        for name, value in flat.items():
            metrics.setdefault(f"{entry['label']}.{name}", []).append(value)

    parsed = sum(1 for s in sources if s["ok"])
    trends = {
        "schema": "cold-report-trends",
        "version": 1,
        "sources": sources,
        "metrics": {
            name: {
                "count": len(vals),
                "first": vals[0],
                "last": vals[-1],
                "min": min(vals),
                "max": max(vals),
                "mean": sum(vals) / len(vals),
                "values": vals,
            }
            for name, vals in sorted(metrics.items())
        },
    }

    width = max((len(n) for n in trends["metrics"]), default=len("metric"))
    print(f"{'metric':<{width}}  {'n':>3}  {'first':>12}  {'last':>12}  "
          f"{'min':>12}  {'max':>12}  {'mean':>12}")
    for name, m in trends["metrics"].items():
        print(f"{name:<{width}}  {m['count']:>3}  {m['first']:>12.4g}  "
              f"{m['last']:>12.4g}  {m['min']:>12.4g}  {m['max']:>12.4g}  "
              f"{m['mean']:>12.4g}")
    print(f"{parsed}/{len(sources)} source(s) aggregated, "
          f"{len(trends['metrics'])} metric(s)")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(trends, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    return 0 if parsed else 2


if __name__ == "__main__":
    sys.exit(main())
